package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// maxPlanBytes bounds a POST /v1/chaos body.
const maxPlanBytes = 1 << 20

// Controller holds the process's armed chaos plan (at most one) and counts
// scheduled injections into a metrics registry. It is the seam both
// binaries share: pmemfleet consults it from the chaos Transport, pmemd
// from the sstcache record-read tamper hook, and both expose its HTTP
// endpoints so a harness can arm and disarm plans remotely.
type Controller struct {
	mu  sync.Mutex
	inj *Injector

	gArmed   *metrics.Gauge
	cTotal   *metrics.Counter
	byType   map[string]*metrics.Counter
	cArms    *metrics.Counter
	cDisarms *metrics.Counter
}

// NewController builds a Controller counting into reg (nil means a private
// registry).
func NewController(reg *metrics.Registry) *Controller {
	if reg == nil {
		reg = metrics.New()
	}
	c := &Controller{
		gArmed:   reg.Gauge("chaos_armed"),
		cTotal:   reg.Counter("chaos_injections"),
		cArms:    reg.Counter("chaos_plans_armed"),
		cDisarms: reg.Counter("chaos_plans_disarmed"),
		byType:   map[string]*metrics.Counter{},
	}
	for typ, name := range map[string]string{
		EvLatency:    "chaos_injected_latency",
		EvReset:      "chaos_injected_resets",
		EvError5xx:   "chaos_injected_5xx",
		EvTruncate:   "chaos_injected_truncations",
		EvBitflip:    "chaos_injected_bitflips",
		EvHang:       "chaos_injected_hangs",
		EvSSTCorrupt: "chaos_injected_sst_corruptions",
	} {
		c.byType[typ] = reg.Counter(name)
	}
	return c
}

// Arm normalizes p and arms it now, replacing any previous plan.
func (c *Controller) Arm(p *Plan) error {
	return c.ArmAt(p, time.Now())
}

// ArmAt arms p with its clock anchored at now (tests use a fixed anchor).
func (c *Controller) ArmAt(p *Plan, now time.Time) error {
	n, err := p.Normalize()
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("chaos: nil plan")
	}
	c.mu.Lock()
	c.inj = NewInjector(n, now)
	c.mu.Unlock()
	c.cArms.Inc()
	c.gArmed.Set(1)
	return nil
}

// Disarm drops the armed plan; every injection stops immediately.
func (c *Controller) Disarm() {
	c.mu.Lock()
	armed := c.inj != nil
	c.inj = nil
	c.mu.Unlock()
	if armed {
		c.cDisarms.Inc()
	}
	c.gArmed.Set(0)
}

func (c *Controller) injector() *Injector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj
}

// Armed reports whether a plan is live.
func (c *Controller) Armed() bool { return c.injector() != nil }

func (c *Controller) decide(target string, keep func(string) bool) []Decision {
	in := c.injector()
	if in == nil {
		return nil
	}
	ds := in.decide(target, time.Now(), keep)
	for _, d := range ds {
		c.cTotal.Inc()
		if ctr := c.byType[d.Type]; ctr != nil {
			ctr.Inc()
		}
	}
	return ds
}

// DecideTransport returns the injections scheduled for one upstream HTTP
// request to target (everything except sst-corrupt, which lives on the
// disk-read path).
func (c *Controller) DecideTransport(target string) []Decision {
	return c.decide(target, func(typ string) bool { return typ != EvSSTCorrupt })
}

// TamperRecord is pmemd's sstcache read hook: when an sst-corrupt event
// fires it flips one deterministic bit of the record payload in place and
// returns it. With no armed plan (or no active event) the payload passes
// through untouched. The sstcache hands each read a freshly allocated
// buffer, so in-place mutation is safe.
func (c *Controller) TamperRecord(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	ds := c.decide("disk", func(typ string) bool { return typ == EvSSTCorrupt })
	for _, d := range ds {
		pos := d.Draw % uint64(len(payload)*8)
		payload[pos/8] ^= 1 << (pos % 8)
	}
	return payload
}

// Status is the GET /v1/chaos payload.
type Status struct {
	Armed          bool     `json:"armed"`
	ElapsedSeconds float64  `json:"elapsed_seconds,omitempty"`
	HorizonSeconds float64  `json:"horizon_seconds,omitempty"`
	Injections     []uint64 `json:"injections,omitempty"` // per event, canonical order
	Plan           *Plan    `json:"plan,omitempty"`
}

// CurrentStatus snapshots the armed plan and its per-event fire counts.
func (c *Controller) CurrentStatus() Status {
	in := c.injector()
	if in == nil {
		return Status{}
	}
	return Status{
		Armed:          true,
		ElapsedSeconds: time.Since(in.ArmedAt()).Seconds(),
		HorizonSeconds: in.Plan().Horizon(),
		Injections:     in.Injections(),
		Plan:           in.Plan(),
	}
}

// Register mounts the chaos control endpoints on mux: POST /v1/chaos arms
// a plan from the request body, GET /v1/chaos reports status, and
// DELETE /v1/chaos disarms.
func (c *Controller) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/chaos", c.handleArm)
	mux.HandleFunc("GET /v1/chaos", c.handleStatus)
	mux.HandleFunc("DELETE /v1/chaos", c.handleDisarm)
}

func (c *Controller) handleArm(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanBytes))
	if err != nil {
		chaosError(w, http.StatusBadRequest, fmt.Sprintf("read plan: %v", err))
		return
	}
	p, err := Parse(raw)
	if err != nil {
		chaosError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := c.Arm(p); err != nil {
		chaosError(w, http.StatusBadRequest, err.Error())
		return
	}
	chaosJSON(w, http.StatusOK, c.CurrentStatus())
}

func (c *Controller) handleStatus(w http.ResponseWriter, r *http.Request) {
	chaosJSON(w, http.StatusOK, c.CurrentStatus())
}

func (c *Controller) handleDisarm(w http.ResponseWriter, r *http.Request) {
	c.Disarm()
	chaosJSON(w, http.StatusOK, Status{})
}

func chaosJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func chaosError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
