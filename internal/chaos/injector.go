package chaos

import (
	"sync/atomic"
	"time"
)

// Decision is one injection the plan scheduled for a consult. Draw is the
// decision's deterministic sub-randomness — bit position for bitflip and
// sst-corrupt, truncation point for truncate — already mixed, so callers
// just take it modulo whatever range they need.
type Decision struct {
	Type   string
	Delay  time.Duration // latency events
	Status int           // error-5xx events
	Draw   uint64
}

// Injector evaluates an armed plan. Each event carries an atomic consult
// sequence number; the Nth consult of event i under seed s always gets the
// same uniform draw, so the injection schedule is replayable given the same
// consult order. Injector is safe for concurrent use.
type Injector struct {
	plan    *Plan // normalized
	armedAt time.Time
	seq     []atomic.Uint64 // per-event consult counter
	hits    []atomic.Uint64 // per-event fire counter (enforces Count)
}

// NewInjector arms a normalized plan at the given instant.
func NewInjector(p *Plan, armedAt time.Time) *Injector {
	return &Injector{
		plan:    p,
		armedAt: armedAt,
		seq:     make([]atomic.Uint64, len(p.Events)),
		hits:    make([]atomic.Uint64, len(p.Events)),
	}
}

// Plan returns the armed (normalized) plan.
func (in *Injector) Plan() *Plan { return in.plan }

// ArmedAt returns the instant the plan's clock started.
func (in *Injector) ArmedAt() time.Time { return in.armedAt }

// decide consults every event that is active at now, matches target, and
// passes keep (nil keeps all), returning the injections that fired in
// canonical event order.
func (in *Injector) decide(target string, now time.Time, keep func(typ string) bool) []Decision {
	elapsed := now.Sub(in.armedAt).Seconds()
	if elapsed < 0 {
		return nil
	}
	var out []Decision
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if keep != nil && !keep(e.Type) {
			continue
		}
		if !e.active(elapsed) || !e.matches(target) {
			continue
		}
		n := in.seq[i].Add(1)
		draw := splitmix64(uint64(in.plan.Seed) ^ splitmix64(uint64(i)+1) ^ splitmix64(n))
		frac := float64(draw>>11) / float64(1<<53)
		if frac >= e.Probability {
			continue
		}
		if n := in.hits[i].Add(1); e.Count > 0 && n > uint64(e.Count) {
			continue
		}
		out = append(out, Decision{
			Type:   e.Type,
			Delay:  time.Duration(e.DelayMS * float64(time.Millisecond)),
			Status: e.Status,
			Draw:   splitmix64(draw),
		})
	}
	return out
}

// Injections returns how many times each event has fired, in canonical
// event order.
func (in *Injector) Injections() []uint64 {
	out := make([]uint64, len(in.hits))
	for i := range in.hits {
		n := in.hits[i].Load()
		if c := in.plan.Events[i].Count; c > 0 && n > uint64(c) {
			n = uint64(c)
		}
		out[i] = n
	}
	return out
}
