// Package chaos is a seeded, deterministic chaos-injection layer for the
// serving path. A Plan is a JSON document scheduling adversarial events —
// added latency, connection resets, 5xx storms, truncated or bit-flipped
// response bodies, worker hangs, and corrupted sstcache record reads — on a
// wall-clock axis anchored at the instant the plan is armed. The only
// randomness (whether a given consult of an active event fires, and the
// sub-draw that picks a bit position or truncation point) comes from a
// splitmix64 stream over (plan seed, canonical event index, per-event
// consult sequence number), so the injection schedule is a pure function of
// the plan: same plan + seed + consult order → same injections. That is
// what lets cmd/pmemchaos assert byte-level invariants while faults fly.
//
// Plans follow the same discipline as internal/faults: Parse rejects
// unknown fields and trailing data, Validate rejects non-finite times,
// out-of-range probabilities, and overlapping windows on the same
// (type, worker) target, and Normalize resolves defaults and sorts events
// into a total order. Parse never panics (see FuzzChaosPlan).
//
// Injection happens at two seams: Transport wraps the fleet router's
// http.RoundTripper (transport-visible events), and Controller.TamperRecord
// hooks pmemd's sstcache record reads ("sst-corrupt" events) so per-record
// CRC verification is exercised against genuinely torn bytes.
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Event type names accepted in a plan's "type" field.
const (
	EvLatency    = "latency"     // add delay_ms before the request proceeds
	EvReset      = "reset"       // fail the request with a connection error
	EvError5xx   = "error-5xx"   // answer a synthetic 5xx without reaching the worker
	EvTruncate   = "truncate"    // cut the response body short
	EvBitflip    = "bitflip"     // flip one deterministic bit in the response body
	EvHang       = "hang"        // hold the request until its context expires
	EvSSTCorrupt = "sst-corrupt" // flip one bit in an sstcache record read
)

// MaxEvents bounds a plan's event list.
const MaxEvents = 64

// MaxDelayMS bounds one latency event's injected delay (a minute: anything
// longer is a hang, and "hang" exists).
const MaxDelayMS = 60_000

// Event is one scheduled injection. Times are wall-clock seconds relative
// to the instant the plan is armed.
type Event struct {
	// Type selects the injection (see the Ev* constants).
	Type string `json:"type"`
	// Start is the window's opening time in seconds after arm.
	Start float64 `json:"start"`
	// Duration is the window length in seconds; 0 means "until disarm".
	Duration float64 `json:"duration,omitempty"`
	// Worker restricts the event to one target (a fleet worker name for
	// transport events); "" matches every target.
	Worker string `json:"worker,omitempty"`
	// Probability is the per-consult chance the active event fires, in
	// (0, 1]; omitted means 1 (every consult fires).
	Probability float64 `json:"probability,omitempty"`
	// DelayMS is the added latency for "latency" events, in (0, MaxDelayMS].
	DelayMS float64 `json:"delay_ms,omitempty"`
	// Status is the synthetic status for "error-5xx" events, in [500, 599];
	// omitted means 503.
	Status int `json:"status,omitempty"`
	// Count caps how many times the event fires; 0 means unlimited.
	Count int `json:"count,omitempty"`
}

// Plan is a validated, canonicalized chaos schedule plus the seed that
// fixes its decision draws.
type Plan struct {
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Parse decodes, validates, and canonicalizes a plan from JSON. Unknown
// fields are rejected so typos fail loudly instead of silently injecting
// nothing. Parse never panics, whatever the input.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if dec.More() {
		return nil, errors.New("chaos: parse plan: trailing data after plan object")
	}
	return p.Normalize()
}

// Normalize validates the plan and returns a canonicalized deep copy:
// defaults resolved, events sorted into a total order. The receiver is not
// modified. Two plans that normalize to equal values schedule the same
// injections.
func (p *Plan) Normalize() (*Plan, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &Plan{Seed: p.Seed, Events: make([]Event, len(p.Events))}
	copy(out.Events, p.Events)
	for i := range out.Events {
		e := &out.Events[i]
		if e.Probability == 0 {
			e.Probability = 1
		}
		if e.Type == EvError5xx && e.Status == 0 {
			e.Status = 503
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].less(&out.Events[j])
	})
	return out, nil
}

func (e *Event) less(o *Event) bool {
	if e.Start != o.Start {
		return e.Start < o.Start
	}
	if e.Type != o.Type {
		return e.Type < o.Type
	}
	if e.Worker != o.Worker {
		return e.Worker < o.Worker
	}
	if e.Duration != o.Duration {
		return e.Duration < o.Duration
	}
	return e.Probability < o.Probability
}

// Canonical returns the canonical JSON bytes of the normalized plan —
// stable across field order and spelling variants of the same schedule.
func (p *Plan) Canonical() ([]byte, error) {
	n, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// finite rejects NaN and ±Inf, which JSON cannot encode but a hand-built
// Plan could still carry.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every event for well-formedness and the plan for
// overlapping windows on the same (type, worker) target. It never panics.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.Events) > MaxEvents {
		return fmt.Errorf("chaos: %d events exceeds the %d-event limit", len(p.Events), MaxEvents)
	}
	for i := range p.Events {
		if err := p.Events[i].validate(); err != nil {
			return fmt.Errorf("chaos: event %d (%s): %w", i, p.Events[i].Type, err)
		}
	}
	for i := range p.Events {
		for j := i + 1; j < len(p.Events); j++ {
			a, b := &p.Events[i], &p.Events[j]
			if a.Type == b.Type && a.Worker == b.Worker && a.overlaps(b) {
				return fmt.Errorf("chaos: events %d and %d: overlapping %s windows on the same target", i, j, a.Type)
			}
		}
	}
	return nil
}

func (e *Event) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"start", e.Start}, {"duration", e.Duration},
		{"probability", e.Probability}, {"delay_ms", e.DelayMS},
	} {
		if !finite(f.v) {
			return fmt.Errorf("%s must be finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("%s must be >= 0, got %g", f.name, f.v)
		}
	}
	if e.Probability > 1 {
		return fmt.Errorf("probability must be in (0, 1], got %g", e.Probability)
	}
	if e.Count < 0 {
		return fmt.Errorf("count must be >= 0, got %d", e.Count)
	}
	switch e.Type {
	case EvLatency:
		if e.DelayMS <= 0 || e.DelayMS > MaxDelayMS {
			return fmt.Errorf("delay_ms must be in (0, %d], got %g", MaxDelayMS, e.DelayMS)
		}
	case EvReset, EvTruncate, EvBitflip, EvHang, EvSSTCorrupt:
		if e.DelayMS != 0 {
			return errors.New("delay_ms only applies to latency events")
		}
		if e.Status != 0 {
			return errors.New("status only applies to error-5xx events")
		}
	case EvError5xx:
		if e.DelayMS != 0 {
			return errors.New("delay_ms only applies to latency events")
		}
		if e.Status != 0 && (e.Status < 500 || e.Status > 599) {
			return fmt.Errorf("status must be in [500, 599], got %d", e.Status)
		}
	default:
		return fmt.Errorf("unknown event type %q", e.Type)
	}
	if e.Type == EvLatency && e.Status != 0 {
		return errors.New("status only applies to error-5xx events")
	}
	return nil
}

// overlaps reports whether the windows [Start, Start+Duration) intersect;
// Duration 0 extends to infinity (until disarm).
func (e *Event) overlaps(o *Event) bool {
	aEnd, bEnd := math.Inf(1), math.Inf(1)
	if e.Duration > 0 {
		aEnd = e.Start + e.Duration
	}
	if o.Duration > 0 {
		bEnd = o.Start + o.Duration
	}
	return e.Start < bEnd && o.Start < aEnd
}

// active reports whether the event's window covers the instant `elapsed`
// seconds after arm.
func (e *Event) active(elapsed float64) bool {
	if elapsed < e.Start {
		return false
	}
	return e.Duration == 0 || elapsed < e.Start+e.Duration
}

// matches reports whether the event applies to the named target.
func (e *Event) matches(target string) bool {
	return e.Worker == "" || e.Worker == target
}

// Horizon returns when the last bounded window closes, in seconds after
// arm. Events with Duration 0 run until disarm and contribute only their
// Start — a harness that wants full recovery must disarm such plans itself.
func (p *Plan) Horizon() float64 {
	if p == nil {
		return 0
	}
	h := 0.0
	for i := range p.Events {
		end := p.Events[i].Start
		if p.Events[i].Duration > 0 {
			end += p.Events[i].Duration
		}
		if end > h {
			h = end
		}
	}
	return h
}

// splitmix64 is the usual 64-bit finalizer-based PRNG step: tiny, seedable,
// and stable across platforms — the same construction internal/faults uses
// for jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
