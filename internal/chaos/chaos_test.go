package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func mustPlan(t *testing.T, src string) *Plan {
	t.Helper()
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return p
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown field", `{"events":[{"type":"latency","delay_ms":5,"nope":1}]}`},
		{"trailing data", `{"events":[]} {}`},
		{"unknown type", `{"events":[{"type":"explode"}]}`},
		{"latency without delay", `{"events":[{"type":"latency"}]}`},
		{"delay on reset", `{"events":[{"type":"reset","delay_ms":5}]}`},
		{"status on bitflip", `{"events":[{"type":"bitflip","status":503}]}`},
		{"status out of range", `{"events":[{"type":"error-5xx","status":404}]}`},
		{"probability above one", `{"events":[{"type":"reset","probability":1.5}]}`},
		{"negative start", `{"events":[{"type":"reset","start":-1}]}`},
		{"negative count", `{"events":[{"type":"reset","count":-1}]}`},
		{"overlap same target", `{"events":[
			{"type":"reset","start":0,"duration":10,"worker":"w1"},
			{"type":"reset","start":5,"duration":10,"worker":"w1"}]}`},
		{"overlap unbounded", `{"events":[
			{"type":"hang","start":0,"worker":"w1"},
			{"type":"hang","start":100,"duration":1,"worker":"w1"}]}`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("%s: Parse accepted %s", c.name, c.src)
		}
	}
	// Same windows on different targets or types are fine.
	mustPlan(t, `{"events":[
		{"type":"reset","start":0,"duration":10,"worker":"w1"},
		{"type":"reset","start":0,"duration":10,"worker":"w2"},
		{"type":"latency","start":0,"duration":10,"worker":"w1","delay_ms":5}]}`)
}

func TestNormalizeDefaultsAndOrder(t *testing.T) {
	p := mustPlan(t, `{"seed":7,"events":[
		{"type":"reset","start":5,"worker":"b","duration":1},
		{"type":"error-5xx","start":1,"duration":2},
		{"type":"latency","start":1,"duration":2,"delay_ms":10}]}`)
	if p.Events[0].Type != EvError5xx || p.Events[0].Status != 503 {
		t.Errorf("first event = %+v, want error-5xx with default status 503", p.Events[0])
	}
	if p.Events[0].Probability != 1 || p.Events[2].Probability != 1 {
		t.Error("omitted probability did not default to 1")
	}
	// Canonical bytes are stable across spelling order.
	a, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	q := mustPlan(t, `{"seed":7,"events":[
		{"type":"latency","delay_ms":10,"duration":2,"start":1},
		{"type":"error-5xx","duration":2,"start":1,"probability":1},
		{"type":"reset","duration":1,"worker":"b","start":5}]}`)
	b, err := q.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("canonical bytes differ:\n%s\n%s", a, b)
	}
}

func TestHorizon(t *testing.T) {
	p := mustPlan(t, `{"events":[
		{"type":"reset","start":2,"duration":3},
		{"type":"hang","start":10,"worker":"w2"}]}`)
	if got := p.Horizon(); got != 10 {
		t.Errorf("Horizon = %g, want 10 (unbounded event contributes its start)", got)
	}
}

// TestInjectorDeterminism: same plan + seed + consult order → identical
// decision sequences; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	const src = `{"seed":42,"events":[
		{"type":"bitflip","start":0,"duration":100,"probability":0.5},
		{"type":"latency","start":0,"duration":100,"delay_ms":7,"probability":0.3}]}`
	anchor := time.Unix(1000, 0)
	run := func(seedDelta int64) [][]Decision {
		p := mustPlan(t, src)
		p.Seed += seedDelta
		in := NewInjector(p, anchor)
		var got [][]Decision
		for i := 0; i < 64; i++ {
			got = append(got, in.decide("w1", anchor.Add(time.Second), nil))
		}
		return got
	}
	a, b := run(0), run(0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical plans produced different injection schedules")
	}
	if reflect.DeepEqual(a, run(1)) {
		t.Error("changing the seed left the injection schedule unchanged")
	}
	fired := 0
	for _, ds := range a {
		fired += len(ds)
	}
	if fired == 0 || fired == 2*64 {
		t.Errorf("probability gating fired %d of %d consults — expected a strict subset", fired, 2*64)
	}
}

func TestInjectorWindowsAndCount(t *testing.T) {
	p := mustPlan(t, `{"events":[
		{"type":"reset","start":5,"duration":10,"worker":"w1","count":2}]}`)
	anchor := time.Unix(0, 0)
	in := NewInjector(p, anchor)
	at := func(sec float64, target string) int {
		return len(in.decide(target, anchor.Add(time.Duration(sec*float64(time.Second))), nil))
	}
	if at(1, "w1") != 0 {
		t.Error("event fired before its window opened")
	}
	if at(6, "w2") != 0 {
		t.Error("event fired for a different worker")
	}
	if at(6, "w1") != 1 || at(7, "w1") != 1 {
		t.Error("active event did not fire")
	}
	if at(8, "w1") != 0 {
		t.Error("count cap did not hold")
	}
	if at(16, "w1") != 0 {
		t.Error("event fired after its window closed")
	}
	if got := in.Injections(); got[0] != 2 {
		t.Errorf("Injections = %v, want [2]", got)
	}
}

func newArmed(t *testing.T, src string) *Controller {
	t.Helper()
	c := NewController(metrics.New())
	p := mustPlan(t, src)
	if err := c.ArmAt(p, time.Now()); err != nil {
		t.Fatal(err)
	}
	return c
}

// upstream returns a test server echoing a fixed body and a client whose
// transport injects from ctl.
func upstream(t *testing.T, ctl *Controller, body string) (*httptest.Server, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, &http.Client{Transport: NewTransport(nil, ctl)}
}

func TestTransportPassThroughWhenDisarmed(t *testing.T) {
	ctl := NewController(metrics.New())
	srv, client := upstream(t, ctl, "hello")
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "hello" {
		t.Errorf("disarmed transport altered the body: %q", b)
	}
}

func TestTransportReset(t *testing.T) {
	ctl := newArmed(t, `{"events":[{"type":"reset","start":0}]}`)
	srv, client := upstream(t, ctl, "hello")
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected connection reset") {
		t.Errorf("want injected reset error, got %v", err)
	}
}

func TestTransport5xx(t *testing.T) {
	ctl := newArmed(t, `{"events":[{"type":"error-5xx","start":0,"status":503}]}`)
	srv, client := upstream(t, ctl, "hello")
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("X-Pmemd-Chaos") != "injected-5xx" {
		t.Errorf("want synthetic 503, got %d %v", resp.StatusCode, resp.Header)
	}
}

func TestTransportBitflipAndTruncate(t *testing.T) {
	const body = "deterministic response body bytes"
	for _, typ := range []string{EvBitflip, EvTruncate} {
		ctl := newArmed(t, `{"events":[{"type":"`+typ+`","start":0}]}`)
		srv, client := upstream(t, ctl, body)
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) == body {
			t.Errorf("%s: body unchanged", typ)
		}
		if typ == EvTruncate && len(b) >= len(body) {
			t.Errorf("truncate: body not shorter (%d vs %d)", len(b), len(body))
		}
		if typ == EvBitflip && len(b) != len(body) {
			t.Errorf("bitflip: length changed (%d vs %d)", len(b), len(body))
		}
	}
}

func TestTransportLatencyAndHang(t *testing.T) {
	ctl := newArmed(t, `{"events":[{"type":"latency","start":0,"delay_ms":80}]}`)
	srv, client := upstream(t, ctl, "hello")
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("latency injection too short: %v", d)
	}

	ctl2 := newArmed(t, `{"events":[{"type":"hang","start":0}]}`)
	srv2, client2 := upstream(t, ctl2, "hello")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv2.URL, nil)
	start = time.Now()
	if _, err := client2.Do(req); err == nil {
		t.Error("hang: request succeeded")
	} else if time.Since(start) < 50*time.Millisecond {
		t.Errorf("hang returned before the context expired: %v", err)
	}
}

func TestTamperRecord(t *testing.T) {
	ctl := newArmed(t, `{"events":[{"type":"sst-corrupt","start":0}]}`)
	orig := []byte("record payload")
	got := ctl.TamperRecord(append([]byte(nil), orig...))
	if bytes.Equal(got, orig) {
		t.Error("sst-corrupt did not flip a bit")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("tamper touched %d bytes, want exactly 1", diff)
	}
	// Transport decisions must not consume sst-corrupt events and vice versa.
	if ds := ctl.DecideTransport("w1"); len(ds) != 0 {
		t.Errorf("DecideTransport returned sst-corrupt decisions: %v", ds)
	}
}

func TestControllerHTTP(t *testing.T) {
	reg := metrics.New()
	ctl := NewController(reg)
	mux := http.NewServeMux()
	ctl.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Bad plan → 400, still disarmed.
	resp, err := http.Post(srv.URL+"/v1/chaos", "application/json", strings.NewReader(`{"events":[{"type":"nope"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ctl.Armed() {
		t.Fatalf("bad plan: status %d, armed %v", resp.StatusCode, ctl.Armed())
	}

	resp, err = http.Post(srv.URL+"/v1/chaos", "application/json",
		strings.NewReader(`{"seed":1,"events":[{"type":"reset","start":0,"duration":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Armed || st.HorizonSeconds != 5 || !ctl.Armed() {
		t.Fatalf("arm status = %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/chaos", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ctl.Armed() {
		t.Error("DELETE left the plan armed")
	}
	if got, _ := reg.Snapshot().Get("chaos_plans_armed"); got != 1 {
		t.Errorf("chaos_plans_armed = %g, want 1", got)
	}
}

// FuzzChaosPlan: Parse never panics, and a plan that parses re-parses to
// the same canonical bytes (canonicalization is a fixed point).
func FuzzChaosPlan(f *testing.F) {
	f.Add([]byte(`{"seed":3,"events":[{"type":"latency","start":1,"duration":2,"delay_ms":10}]}`))
	f.Add([]byte(`{"events":[{"type":"sst-corrupt","probability":0.5,"count":3}]}`))
	f.Add([]byte(`{"events":[{"type":"error-5xx","status":599}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		c1, err := p.Canonical()
		if err != nil {
			t.Fatalf("canonical after successful parse: %v", err)
		}
		p2, err := Parse(c1)
		if err != nil {
			t.Fatalf("reparse canonical: %v", err)
		}
		c2, err := p2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization not a fixed point:\n%s\n%s", c1, c2)
		}
	})
}
