package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

type targetKeyType struct{}

var targetKey targetKeyType

// WithTarget names the logical target (e.g. the fleet worker name) of the
// request built on ctx, so plans can aim events at one worker regardless
// of its host:port.
func WithTarget(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, targetKey, name)
}

// TargetFrom returns the name set by WithTarget, or "".
func TargetFrom(ctx context.Context) string {
	name, _ := ctx.Value(targetKey).(string)
	return name
}

// Transport wraps an http.RoundTripper with plan-scheduled injections:
// latency is added before the request proceeds, reset fails it with a
// connection-style error, hang holds it until the request context expires,
// error-5xx answers synthetically without reaching the upstream, and
// truncate/bitflip corrupt the body of an otherwise successful response —
// exactly the corruptions the router's end-to-end SHA-256 check must catch.
// With no armed plan it is a transparent pass-through.
type Transport struct {
	base http.RoundTripper
	ctl  *Controller
}

// NewTransport wraps base (nil means http.DefaultTransport) with ctl's
// armed plan.
func NewTransport(base http.RoundTripper, ctl *Controller) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, ctl: ctl}
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := TargetFrom(req.Context())
	if target == "" {
		target = req.URL.Host
	}
	ds := t.ctl.DecideTransport(target)
	var delay time.Duration
	var term *Decision // first non-latency injection wins
	for i := range ds {
		if ds[i].Type == EvLatency {
			delay += ds[i].Delay
		} else if term == nil {
			term = &ds[i]
		}
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("chaos: request canceled during injected latency (target %s): %w", target, req.Context().Err())
		}
	}
	if term != nil {
		switch term.Type {
		case EvReset:
			return nil, fmt.Errorf("chaos: injected connection reset (target %s)", target)
		case EvHang:
			<-req.Context().Done()
			return nil, fmt.Errorf("chaos: injected hang (target %s): %w", target, req.Context().Err())
		case EvError5xx:
			body := []byte(`{"error":"chaos: injected upstream failure"}` + "\n")
			return &http.Response{
				Status:        fmt.Sprintf("%d %s", term.Status, http.StatusText(term.Status)),
				StatusCode:    term.Status,
				Proto:         "HTTP/1.1",
				ProtoMajor:    1,
				ProtoMinor:    1,
				Header:        http.Header{"Content-Type": {"application/json"}, "X-Pmemd-Chaos": {"injected-5xx"}},
				Body:          io.NopCloser(bytes.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || term == nil || resp.StatusCode != http.StatusOK || resp.Body == nil {
		return resp, err
	}
	switch term.Type {
	case EvTruncate, EvBitflip:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			if term.Type == EvTruncate {
				body = body[:int(term.Draw%uint64(len(body)))]
			} else {
				pos := term.Draw % uint64(len(body)*8)
				body[pos/8] ^= 1 << (pos % 8)
			}
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
		resp.Header.Set("X-Pmemd-Chaos", "injected-"+term.Type)
	}
	return resp, nil
}
