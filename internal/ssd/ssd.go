// Package ssd models the NVMe block device the paper uses as its
// "traditional OLAP system" baseline (Section 6.2, footnote 3): an Intel SSD
// DC P4610 with 3.20 GB/s sequential read and 2.08 GB/s sequential write.
package ssd

import "repro/internal/access"

// Params holds the SSD model constants.
type Params struct {
	SeqReadBytesPerSec  float64
	SeqWriteBytesPerSec float64
	// RandReadBytesPerSec / RandWriteBytesPerSec are 4 KiB random throughput
	// at high queue depth (datasheet-level numbers for the P4610).
	RandReadBytesPerSec  float64
	RandWriteBytesPerSec float64
	// BlockBytes is the access granularity: all I/O rounds up to blocks.
	BlockBytes int64
}

// DefaultParams returns the Intel SSD DC P4610 model.
func DefaultParams() Params {
	return Params{
		SeqReadBytesPerSec:   3.20e9,
		SeqWriteBytesPerSec:  2.08e9,
		RandReadBytesPerSec:  2.6e9, // ~640k IOPS x 4 KiB
		RandWriteBytesPerSec: 0.8e9, // ~200k IOPS x 4 KiB
		BlockBytes:           4096,
	}
}

// Rate returns the device throughput for a direction/pattern combination.
func (p Params) Rate(dir access.Direction, pattern access.Pattern) float64 {
	if pattern == access.Random {
		if dir == access.Read {
			return p.RandReadBytesPerSec
		}
		return p.RandWriteBytesPerSec
	}
	if dir == access.Read {
		return p.SeqReadBytesPerSec
	}
	return p.SeqWriteBytesPerSec
}

// Amplification returns device bytes transferred per application byte: I/O
// smaller than a block still moves a whole block.
func (p Params) Amplification(accessSize int64) float64 {
	if accessSize <= 0 || accessSize >= p.BlockBytes {
		blocks := (accessSize + p.BlockBytes - 1) / p.BlockBytes
		if accessSize <= 0 {
			return 1
		}
		return float64(blocks*p.BlockBytes) / float64(accessSize)
	}
	return float64(p.BlockBytes) / float64(accessSize)
}
