package ssd

import (
	"math"
	"testing"

	"repro/internal/access"
)

func TestRates(t *testing.T) {
	p := DefaultParams()
	// Footnote 3: Intel SSD DC P4610, 3.20 GB/s seq read, 2.08 GB/s seq write.
	if got := p.Rate(access.Read, access.SeqIndividual); got != 3.20e9 {
		t.Errorf("seq read rate = %g, want 3.20e9", got)
	}
	if got := p.Rate(access.Write, access.SeqGrouped); got != 2.08e9 {
		t.Errorf("seq write rate = %g, want 2.08e9", got)
	}
	if got := p.Rate(access.Read, access.Random); got != p.RandReadBytesPerSec {
		t.Errorf("rand read rate = %g, want %g", got, p.RandReadBytesPerSec)
	}
	if got := p.Rate(access.Write, access.Random); got != p.RandWriteBytesPerSec {
		t.Errorf("rand write rate = %g, want %g", got, p.RandWriteBytesPerSec)
	}
}

func TestAmplification(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		size int64
		want float64
	}{
		{64, 64}, // 64 B I/O moves a 4 KiB block
		{4096, 1},
		{8192, 1},
		{6000, 8192.0 / 6000},
		{0, 1},
	}
	for _, c := range cases {
		if got := p.Amplification(c.size); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Amplification(%d) = %g, want %g", c.size, got, c.want)
		}
	}
}
