// Package partition implements the multi-socket data-partitioning schemes
// the paper points to for PMEM-aware systems (Sections 3.5 and 6.2): the
// goal is to "stripe data into independent and evenly distributed data sets
// across the PMEM of all sockets" so that every thread reads only near
// memory. The package provides round-robin, hash, and range partitioners,
// imbalance metrics, and a skew generator for evaluating how uneven
// partitions waste bandwidth (the paper: "creating optimal partitions is
// not always possible and generally hard to achieve, e.g., due to skewed
// data").
package partition

import (
	"fmt"
	"math"
)

// Scheme selects a partitioning strategy.
type Scheme int

const (
	// RoundRobin assigns tuple i to socket i % n: perfectly balanced,
	// key-oblivious (the paper's "shuffled and striped" fact table).
	RoundRobin Scheme = iota
	// ByHash assigns by key hash: balanced for distinct-heavy keys, robust
	// to value skew but not to frequency skew of a single hot key.
	ByHash
	// ByRange splits the observed key domain into equal-width ranges: good
	// locality for range queries, badly imbalanced under skew.
	ByRange
)

func (s Scheme) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case ByHash:
		return "hash"
	case ByRange:
		return "range"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Assignment maps tuples to sockets.
type Assignment struct {
	Sockets int
	// Of[i] is the socket of tuple i.
	Of []uint8
	// Counts[s] is the number of tuples on socket s.
	Counts []int64
}

// Partition assigns each key's tuple to a socket under the scheme.
func Partition(keys []uint64, sockets int, scheme Scheme) (Assignment, error) {
	if sockets < 1 || sockets > 255 {
		return Assignment{}, fmt.Errorf("partition: sockets = %d out of range", sockets)
	}
	a := Assignment{Sockets: sockets, Of: make([]uint8, len(keys)), Counts: make([]int64, sockets)}
	switch scheme {
	case RoundRobin:
		for i := range keys {
			s := uint8(i % sockets)
			a.Of[i] = s
			a.Counts[s]++
		}
	case ByHash:
		for i, k := range keys {
			s := uint8(mix(k) % uint64(sockets))
			a.Of[i] = s
			a.Counts[s]++
		}
	case ByRange:
		if len(keys) == 0 {
			return a, nil
		}
		lo, hi := keys[0], keys[0]
		for _, k := range keys {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		span := hi - lo + 1
		for i, k := range keys {
			s := uint8(uint64(sockets) * (k - lo) / span)
			if int(s) >= sockets {
				s = uint8(sockets - 1)
			}
			a.Of[i] = s
			a.Counts[s]++
		}
	default:
		return Assignment{}, fmt.Errorf("partition: unknown scheme %v", scheme)
	}
	return a, nil
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Imbalance returns max partition size over the mean: 1.0 is perfect.
func (a Assignment) Imbalance() float64 {
	if len(a.Counts) == 0 {
		return 1
	}
	var total, max int64
	for _, c := range a.Counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(a.Counts))
	return float64(max) / mean
}

// ScanMakespanFactor returns how much longer a near-only parallel scan of
// the partitions takes compared to a balanced layout: with each socket
// scanning its own partition at equal bandwidth, the makespan is set by the
// largest partition, so the factor equals Imbalance().
func (a Assignment) ScanMakespanFactor() float64 { return a.Imbalance() }

// EffectiveBandwidthFraction is the share of the machine's aggregate
// near-read bandwidth an imbalanced layout actually delivers (1/Imbalance).
func (a Assignment) EffectiveBandwidthFraction() float64 {
	return 1 / a.Imbalance()
}

// ZipfKeys generates n keys from an approximate Zipf(s) distribution over
// [0, domain), deterministically. s = 0 is uniform; s around 1 is the
// classic heavy skew. Used to evaluate partitioning under skew.
func ZipfKeys(n int, domain uint64, s float64, seed uint64) []uint64 {
	if domain == 0 {
		domain = 1
	}
	keys := make([]uint64, n)
	if s <= 0 {
		for i := range keys {
			keys[i] = mix(seed+uint64(i)) % domain
		}
		return keys
	}
	// Inverse-CDF sampling of a bounded Pareto approximating Zipf ranks:
	// rank = domain * u^(1/s') with s' shaping the tail.
	shape := 1 / s
	for i := range keys {
		u := float64(mix(seed+uint64(i))%1_000_000_007) / 1_000_000_007
		if u <= 0 {
			u = 0.5 / 1_000_000_007
		}
		r := math.Pow(u, 1+shape) // small u -> small rank; skews mass to low keys
		keys[i] = uint64(r * float64(domain))
		if keys[i] >= domain {
			keys[i] = domain - 1
		}
	}
	return keys
}
