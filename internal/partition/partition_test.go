package partition

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinBalanced(t *testing.T) {
	keys := make([]uint64, 1000)
	a, err := Partition(keys, 2, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 500 || a.Counts[1] != 500 {
		t.Errorf("round-robin counts = %v, want 500/500", a.Counts)
	}
	if got := a.Imbalance(); got != 1 {
		t.Errorf("Imbalance = %g, want 1", got)
	}
}

func TestHashBalancedOnUniformKeys(t *testing.T) {
	keys := ZipfKeys(100000, 1<<32, 0, 42) // uniform
	a, err := Partition(keys, 4, ByHash)
	if err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(); imb > 1.05 {
		t.Errorf("hash imbalance on uniform keys = %.3f, want ~1", imb)
	}
}

func TestRangeImbalancedOnSkew(t *testing.T) {
	uniform := ZipfKeys(100000, 1<<20, 0, 7)
	skewed := ZipfKeys(100000, 1<<20, 1.0, 7)

	au, err := Partition(uniform, 2, ByRange)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Partition(skewed, 2, ByRange)
	if err != nil {
		t.Fatal(err)
	}
	if au.Imbalance() > 1.1 {
		t.Errorf("range on uniform keys imbalance = %.3f, want ~1", au.Imbalance())
	}
	if as.Imbalance() < 1.3 {
		t.Errorf("range on skewed keys imbalance = %.3f, want clearly > 1.3", as.Imbalance())
	}
	// Hash partitioning shrugs off the same skew (skewed *values*, but the
	// keys are still mostly distinct).
	ah, err := Partition(skewed, 2, ByHash)
	if err != nil {
		t.Fatal(err)
	}
	if ah.Imbalance() > as.Imbalance() {
		t.Errorf("hash (%.3f) worse than range (%.3f) under skew", ah.Imbalance(), as.Imbalance())
	}
}

func TestBandwidthFractionIsInverseImbalance(t *testing.T) {
	skewed := ZipfKeys(50000, 1<<20, 1.2, 3)
	a, err := Partition(skewed, 2, ByRange)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.EffectiveBandwidthFraction(), 1/a.Imbalance(); got != want {
		t.Errorf("EffectiveBandwidthFraction = %g, want %g", got, want)
	}
	if a.ScanMakespanFactor() != a.Imbalance() {
		t.Error("ScanMakespanFactor != Imbalance")
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition(nil, 0, RoundRobin); err == nil {
		t.Error("sockets=0 accepted")
	}
	if _, err := Partition(nil, 300, RoundRobin); err == nil {
		t.Error("sockets=300 accepted")
	}
	if _, err := Partition([]uint64{1}, 2, Scheme(9)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if Scheme(9).String() == "" {
		t.Error("empty scheme string")
	}
}

func TestEmptyKeys(t *testing.T) {
	for _, sch := range []Scheme{RoundRobin, ByHash, ByRange} {
		a, err := Partition(nil, 2, sch)
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		if a.Imbalance() != 1 {
			t.Errorf("%v: empty imbalance = %g", sch, a.Imbalance())
		}
	}
}

// Property: every tuple lands on a valid socket and counts are consistent.
func TestAssignmentConsistencyProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, schemeRaw uint8) bool {
		n := int(nRaw%2000) + 1
		scheme := Scheme(schemeRaw % 3)
		keys := ZipfKeys(n, 1<<16, 0.8, seed)
		a, err := Partition(keys, 4, scheme)
		if err != nil {
			return false
		}
		counts := make([]int64, 4)
		for _, s := range a.Of {
			if int(s) >= 4 {
				return false
			}
			counts[s]++
		}
		for i := range counts {
			if counts[i] != a.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ZipfKeys is deterministic and in-domain.
func TestZipfKeysProperty(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		s := float64(sRaw%20) / 10
		a := ZipfKeys(500, 1000, s, seed)
		b := ZipfKeys(500, 1000, s, seed)
		for i := range a {
			if a[i] != b[i] || a[i] >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
