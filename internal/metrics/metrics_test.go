package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterAdd(t *testing.T) {
	r := New()
	c := r.Counter("a.bytes")
	c.Add(1.5)
	c.Add(2.5)
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %g, want 5", got)
	}
	c.Add(-3) // negative and zero deltas are ignored
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value after no-op adds = %g, want 5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.SetMax(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := New()
	g := r.Gauge("util.peak")
	g.SetMax(0.4)
	g.SetMax(0.9)
	g.SetMax(0.2)
	if got := g.Value(); got != 0.9 {
		t.Fatalf("SetMax kept %g, want 0.9", got)
	}
}

func TestHandleIdentity(t *testing.T) {
	r := New()
	if r.Counter("same") != r.Counter("same") {
		t.Fatal("Counter must return the same handle for the same name")
	}
	if r.Gauge("same") != r.Gauge("same") {
		t.Fatal("Gauge must return the same handle for the same name")
	}
}

// TestConcurrentAdd exercises the CAS loop from many goroutines; run with
// -race this is also the package's data-race check.
func TestConcurrentAdd(t *testing.T) {
	r := New()
	c := r.Counter("contended")
	g := r.Gauge("peak")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.SetMax(float64(w))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("lost updates: %g, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers-1 {
		t.Fatalf("gauge max = %g, want %d", got, workers-1)
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := New()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Gauge("m.mid").Set(2)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Get("m.mid"); !ok || v != 2 {
		t.Fatalf("Get(m.mid) = %g, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) must report absence")
	}
	var a, b bytes.Buffer
	s.Fprint(&a)
	s.Fprint(&b)
	if a.String() != b.String() {
		t.Fatal("Fprint is not deterministic")
	}
	if !strings.Contains(a.String(), "a.first") {
		t.Fatalf("text output missing counter:\n%s", a.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("pmem.s0.read.app_bytes").Add(7e10)
	r.Gauge("xpdimm.s0.xpbuffer.hit_rate").Set(0.4)
	s := r.Snapshot()

	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSON is not byte-stable")
	}

	var back Snapshot
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Get("pmem.s0.read.app_bytes"); !ok || v != 7e10 {
		t.Fatalf("round-trip lost counter: %g, %v", v, ok)
	}
	if v, ok := back.Get("xpdimm.s0.xpbuffer.hit_rate"); !ok || v != 0.4 {
		t.Fatalf("round-trip lost gauge: %g, %v", v, ok)
	}
}

func TestMerge(t *testing.T) {
	ra, rb := New(), New()
	ra.Counter("shared").Add(1)
	ra.Counter("only_a").Add(2)
	ra.Gauge("peak").Set(0.3)
	rb.Counter("shared").Add(10)
	rb.Counter("only_b").Add(20)
	rb.Gauge("peak").Set(0.8)

	m := Merge(ra.Snapshot(), rb.Snapshot())
	for name, want := range map[string]float64{
		"shared": 11, "only_a": 2, "only_b": 20, // counters sum
		"peak": 0.8, // gauges take the max
	} {
		if v, ok := m.Get(name); !ok || v != want {
			t.Errorf("merged %s = %g, %v; want %g", name, v, ok, want)
		}
	}
	// Merging with the zero Snapshot is the aggregation loop's seed case.
	if v, ok := Merge(Snapshot{}, ra.Snapshot()).Get("shared"); !ok || v != 1 {
		t.Errorf("merge with empty lost data: %g, %v", v, ok)
	}
	if !(Snapshot{}).Empty() {
		t.Error("zero Snapshot must be Empty")
	}
	if m.Empty() {
		t.Error("merged snapshot must not be Empty")
	}
}
