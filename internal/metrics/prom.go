package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line and one sample per metric,
// counters first, then gauges, each group in name order. Metric names are
// sanitized to the Prometheus grammar (dots and other invalid runes become
// underscores), so the simulation's dotted names ("pmem.s0.ch0.read_bytes")
// scrape as "pmem_s0_ch0_read_bytes". prefix is prepended verbatim to every
// name — pmemd uses it to namespace the simulation aggregate ("sim_") apart
// from its own server_* series.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	for _, sm := range s.Counters {
		if err := writeProm(w, prefix, sm, "counter"); err != nil {
			return err
		}
	}
	for _, sm := range s.Gauges {
		if err := writeProm(w, prefix, sm, "gauge"); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writePromHistogram(w, prefix, h); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and renders it; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	return r.Snapshot().WritePrometheus(w, prefix)
}

func writeProm(w io.Writer, prefix string, sm Sample, typ string) error {
	name := PromName(prefix + sm.Name)
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, promValue(sm.Value))
	return err
}

// PromName maps an arbitrary metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_'; a leading digit gets
// an underscore prefix. Distinct registry names can collide after mapping
// ("a.b" and "a/b"); the registry's dotted naming convention keeps that
// from happening in practice.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promValue renders a float the way Prometheus parses it; the shortest
// round-trippable form keeps the exposition byte-stable for a given value.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
