// Package metrics is the simulation's observability layer: a lightweight,
// allocation-conscious counter/gauge registry that the machine models thread
// their per-mechanism statistics through — the software analogue of the
// hardware counters (iMC, UPI, VTune) the paper's analysis is built on.
//
// Counters accumulate (bytes moved, lines flushed, UPI crossings); gauges
// hold level-style values (peak utilization, hit rates). Handles returned by
// Counter/Gauge are stable and safe for concurrent use: the hot path of the
// simulator resolves its handles once and then performs lock-free atomic
// adds, so a Run with metrics enabled allocates nothing per solver step.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically accumulating float64 value.
type Counter struct {
	bits atomic.Uint64
}

// Add accumulates v (negative deltas are ignored; counters only grow).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a level-style value: set, or raised to a running maximum.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of counters and gauges. The zero value is
// not usable; call New. A nil *Registry is a valid no-op sink: Counter and
// Gauge return nil handles whose methods do nothing, so model code can
// record unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Sample is one named value in a snapshot.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot is a point-in-time copy of a registry, sorted by name, suitable
// for rendering, comparison, and aggregation.
type Snapshot struct {
	Counters   []Sample
	Gauges     []Sample
	Histograms []HistogramSample
}

// Snapshot copies the registry's current values. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Sample{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Sample{name, g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.sample(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Get returns a counter or gauge value from the snapshot by name.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, lst := range [][]Sample{s.Counters, s.Gauges} {
		i := sort.Search(len(lst), func(i int) bool { return lst[i].Name >= name })
		if i < len(lst) && lst[i].Name == name {
			return lst[i].Value, true
		}
	}
	return 0, false
}

// Empty reports whether the snapshot holds no samples.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Fprint renders the snapshot as a stable, aligned text report.
func (s Snapshot) Fprint(w io.Writer) {
	width := 0
	for _, lst := range [][]Sample{s.Counters, s.Gauges} {
		for _, sm := range lst {
			if len(sm.Name) > width {
				width = len(sm.Name)
			}
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, sm := range s.Counters {
			fmt.Fprintf(w, "  %-*s %s\n", width, sm.Name, formatValue(sm.Value))
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, sm := range s.Gauges {
			fmt.Fprintf(w, "  %-*s %s\n", width, sm.Name, formatValue(sm.Value))
		}
	}
	fprintHistograms(w, s.Histograms)
}

// formatValue prints counts as integers and everything else compactly.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// MarshalJSON renders the snapshot as two name->value objects. Object keys
// are emitted in sorted order (encoding/json sorts map keys), so the output
// is byte-stable for a given snapshot.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	obj := struct {
		Counters   map[string]float64       `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms,omitempty"`
	}{Counters: make(map[string]float64, len(s.Counters)), Gauges: make(map[string]float64, len(s.Gauges))}
	for _, sm := range s.Counters {
		obj.Counters[sm.Name] = sm.Value
	}
	for _, sm := range s.Gauges {
		obj.Gauges[sm.Name] = sm.Value
	}
	if len(s.Histograms) > 0 {
		obj.Histograms = make(map[string]histogramJSON, len(s.Histograms))
		for _, h := range s.Histograms {
			obj.Histograms[h.Name] = histogramJSON{Bounds: h.Bounds, Counts: h.Counts, Sum: h.Sum}
		}
	}
	return json.Marshal(obj)
}

// histogramJSON is the wire form of one histogram in a snapshot; the name is
// the enclosing object key.
type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

// UnmarshalJSON restores a snapshot written by MarshalJSON.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var obj struct {
		Counters   map[string]float64       `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	*s = Snapshot{}
	for name, v := range obj.Counters {
		s.Counters = append(s.Counters, Sample{name, v})
	}
	for name, v := range obj.Gauges {
		s.Gauges = append(s.Gauges, Sample{name, v})
	}
	for name, h := range obj.Histograms {
		s.Histograms = append(s.Histograms, HistogramSample{
			Name: name, Bounds: h.Bounds, Counts: h.Counts, Sum: h.Sum})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Merge combines two snapshots: counters are summed, gauges take the
// maximum. This is how the experiment runner aggregates the per-experiment
// snapshots into a suite-wide view (sums of traffic, worst-case peaks).
func Merge(a, b Snapshot) Snapshot {
	return Snapshot{
		Counters:   mergeSamples(a.Counters, b.Counters, func(x, y float64) float64 { return x + y }),
		Gauges:     mergeSamples(a.Gauges, b.Gauges, math.Max),
		Histograms: mergeHistograms(a.Histograms, b.Histograms),
	}
}

func mergeSamples(a, b []Sample, combine func(x, y float64) float64) []Sample {
	out := make([]Sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Sample{a[i].Name, combine(a[i].Value, b[j].Value)})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
