package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("pmem.s0.ch0.read_media_bytes").Add(4096)
	r.Counter("server_cache_hits").Add(2)
	r.Gauge("xpdimm.s0.xpbuffer.hit_rate").Set(0.75)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pmem_s0_ch0_read_media_bytes counter\npmem_s0_ch0_read_media_bytes 4096\n",
		"# TYPE server_cache_hits counter\nserver_cache_hits 2\n",
		"# TYPE xpdimm_s0_xpbuffer_hit_rate gauge\nxpdimm_s0_xpbuffer_hit_rate 0.75\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters come before gauges.
	if strings.Index(out, "server_cache_hits") > strings.Index(out, "hit_rate gauge") {
		t.Errorf("counters not grouped before gauges:\n%s", out)
	}
}

func TestWritePrometheusPrefix(t *testing.T) {
	r := New()
	r.Counter("upi.crossings").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "sim_"); err != nil {
		t.Fatal(err)
	}
	if want := "sim_upi_crossings 1\n"; !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pmem.s0.ch0": "pmem_s0_ch0",
		"0weird":      "_0weird",
		"a-b/c d":     "a_b_c_d",
		"ok_name:sub": "ok_name:sub",
		"":            "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
