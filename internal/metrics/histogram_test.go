package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	r := New()
	h := r.Histogram("req.seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.565) > 1e-12 {
		t.Fatalf("Sum = %v, want ~5.565", got)
	}
	s, ok := r.Snapshot().GetHistogram("req.seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.005 and 0.01 land in le=0.01 (bounds are inclusive), 0.05 in le=0.1,
	// 0.5 in le=1, 5 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
}

func TestHistogramSameHandle(t *testing.T) {
	r := New()
	a := r.Histogram("h", []float64{1, 2})
	b := r.Histogram("h", []float64{9, 99}) // later bounds ignored
	if a != b {
		t.Fatal("second Histogram call must return the first handle")
	}
	a.Observe(1.5)
	if s, _ := r.Snapshot().GetHistogram("h"); s.Bounds[0] != 1 || s.Counts[1] != 1 {
		t.Fatalf("bounds/counts = %v/%v", s.Bounds, s.Counts)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var r *Registry
	h := r.Histogram("h", []float64{1})
	if h != nil {
		t.Fatal("nil registry must return nil histogram")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must be inert")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("h", DefaultDurationBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.02)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	mk := func(obs ...float64) Snapshot {
		r := New()
		h := r.Histogram("h", []float64{1, 10})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	m := Merge(mk(0.5, 5), mk(5, 50))
	h, ok := m.GetHistogram("h")
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if h.Count() != 4 || h.Sum != 60.5 {
		t.Fatalf("Count/Sum = %d/%v, want 4/60.5", h.Count(), h.Sum)
	}
	want := []uint64{1, 2, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}

	// Mismatched bucket layouts keep the first operand.
	r2 := New()
	r2.Histogram("h", []float64{7}).Observe(3)
	m2 := Merge(mk(0.5), r2.Snapshot())
	h2, _ := m2.GetHistogram("h")
	if len(h2.Bounds) != 2 || h2.Count() != 1 {
		t.Fatalf("mismatched merge = %+v, want first operand", h2)
	}
}

func TestHistogramPrometheus(t *testing.T) {
	r := New()
	h := r.Histogram("server.request.duration.seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE server_request_duration_seconds histogram",
		`server_request_duration_seconds_bucket{le="0.1"} 1`,
		`server_request_duration_seconds_bucket{le="1"} 2`,
		`server_request_duration_seconds_bucket{le="+Inf"} 3`,
		"server_request_duration_seconds_sum 2.55",
		"server_request_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	h, ok := back.GetHistogram("h")
	if !ok || h.Count() != 1 || h.Sum != 0.5 || len(h.Bounds) != 1 {
		t.Fatalf("round trip lost histogram: %+v", h)
	}
}

func TestHistogramOmittedFromJSONWhenAbsent(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Older snapshots had no histograms key; keep their bytes unchanged.
	if strings.Contains(string(data), "histograms") {
		t.Fatalf("empty snapshot must omit histograms key: %s", data)
	}
}

func TestHistogramFprint(t *testing.T) {
	r := New()
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	r.Snapshot().Fprint(&buf)
	if !strings.Contains(buf.String(), "histograms:") || !strings.Contains(buf.String(), "count=1") {
		t.Fatalf("Fprint output missing histogram section:\n%s", buf.String())
	}
}
