package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf bucket at
// the end. Like Counter, the hot path is lock-free — pmemd observes request
// durations and queue waits on every request without allocation.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, immutable after creation
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefaultDurationBuckets returns upper bounds (in seconds) suitable for
// request latencies spanning sub-millisecond cache hits to multi-minute
// simulations.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use; on later calls the existing histogram is returned and
// bounds are ignored (bucket layouts are fixed for a registry's lifetime).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSample is one histogram's state in a snapshot. Counts has one
// entry per bound plus the trailing +Inf bucket; entries are per-bucket (not
// cumulative — the Prometheus exposition cumulates them on output).
type HistogramSample struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// Count returns the sample's total observation count.
func (h HistogramSample) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

func (h *Histogram) sample(name string) HistogramSample {
	s := HistogramSample{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// GetHistogram returns a histogram sample from the snapshot by name.
func (s Snapshot) GetHistogram(name string) (HistogramSample, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramSample{}, false
}

func fprintHistograms(w io.Writer, hs []HistogramSample) {
	if len(hs) == 0 {
		return
	}
	fmt.Fprintln(w, "histograms:")
	for _, h := range hs {
		fmt.Fprintf(w, "  %s count=%d sum=%s\n", h.Name, h.Count(), formatValue(h.Sum))
		cum := uint64(0)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			cum += c
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "    le=%s %d\n", formatValue(h.Bounds[i]), cum)
			} else {
				fmt.Fprintf(w, "    le=+Inf %d\n", cum)
			}
		}
	}
}

// writePromHistogram renders one histogram in the Prometheus exposition:
// cumulative _bucket series with le labels, then _sum and _count.
func writePromHistogram(w io.Writer, prefix string, h HistogramSample) error {
	name := PromName(prefix + h.Name)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = promValue(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promValue(h.Sum), name, cum)
	return err
}

// mergeHistograms combines two sorted histogram sample lists: same-name
// samples with identical bounds sum their per-bucket counts and sums;
// mismatched bucket layouts keep the first operand's sample (merging them
// meaningfully is impossible, and one registry never produces both).
func mergeHistograms(a, b []HistogramSample) []HistogramSample {
	out := make([]HistogramSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			out = append(out, combineHistogramSamples(a[i], b[j]))
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func combineHistogramSamples(a, b HistogramSample) HistogramSample {
	if len(a.Bounds) != len(b.Bounds) {
		return a
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return a
		}
	}
	c := HistogramSample{
		Name:   a.Name,
		Bounds: append([]float64(nil), a.Bounds...),
		Counts: make([]uint64, len(a.Counts)),
		Sum:    a.Sum + b.Sum,
	}
	for i := range a.Counts {
		c.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return c
}
