package upi

import (
	"math"
	"testing"
)

func TestColdCapShape(t *testing.T) {
	p := DefaultParams()
	// Figure 5 "Far": ~8 GB/s peak at 4 threads, declining for more threads.
	if got := p.ColdCap(4); math.Abs(got-8e9) > 1e6 {
		t.Errorf("ColdCap(4) = %g, want 8e9", got)
	}
	if got := p.ColdCap(1); math.Abs(got-8e9) > 1e6 {
		t.Errorf("ColdCap(1) = %g, want 8e9 (no contention below ref)", got)
	}
	c18 := p.ColdCap(18)
	c36 := p.ColdCap(36)
	if !(c36 < c18 && c18 < 8e9) {
		t.Errorf("ColdCap not declining: ColdCap(18)=%g, ColdCap(36)=%g", c18, c36)
	}
	if c36 < 4e9 || c36 > 6e9 {
		t.Errorf("ColdCap(36) = %g, want ~4.6e9 (Figure 5 far at 36 threads)", c36)
	}
}

func TestWarmFarReadCap(t *testing.T) {
	p := DefaultParams()
	// Figure 5: warm far reads reach ~33 GB/s.
	got := p.WarmFarReadCap()
	if got < 32e9 || got > 34.5e9 {
		t.Errorf("WarmFarReadCap = %g, want ~33e9", got)
	}
}

func TestTwoSocketFarReadPlateau(t *testing.T) {
	p := DefaultParams()
	// Figure 6a "2 Far": both sockets far-read; each direction carries one
	// socket's data plus the other's requests. Solving
	// (DataCostFactor+RequestCostFactor) * r = Raw gives each socket's rate;
	// the total should land near the paper's ~50 GB/s.
	r := p.RawBytesPerSecPerDir / (p.DataCostFactor + p.RequestCostFactor)
	total := 2 * r
	if total < 48e9 || total > 56e9 {
		t.Errorf("two-socket far plateau = %g, want ~50e9", total)
	}
}

func TestWarmthLifecycle(t *testing.T) {
	w := NewWarmth()
	k := Key{Region: 1, Socket: 0}
	region := int64(10e9)

	if w.IsWarm(k) {
		t.Fatal("fresh pair reported warm")
	}
	if got := w.RemainingCold(k, region); got != 10e9 {
		t.Errorf("RemainingCold = %g, want 10e9", got)
	}
	w.Record(k, 4e9, region)
	if w.IsWarm(k) {
		t.Error("pair warm after partial pass")
	}
	if got := w.RemainingCold(k, region); got != 6e9 {
		t.Errorf("RemainingCold = %g, want 6e9", got)
	}
	w.Record(k, 6e9, region)
	if !w.IsWarm(k) {
		t.Error("pair not warm after full pass")
	}
	if got := w.RemainingCold(k, region); got != 0 {
		t.Errorf("RemainingCold = %g, want 0 after warm", got)
	}
	// Warm pairs ignore further recording.
	w.Record(k, 1e9, region)
	if !w.IsWarm(k) {
		t.Error("warm pair lost warmth on Record")
	}
}

func TestWarmthPerSocketIndependence(t *testing.T) {
	w := NewWarmth()
	a := Key{Region: 1, Socket: 0}
	b := Key{Region: 1, Socket: 1}
	w.MarkWarm(a)
	if !w.IsWarm(a) {
		t.Error("MarkWarm did not warm the pair")
	}
	if w.IsWarm(b) {
		t.Error("warmth leaked across sockets")
	}
}

func TestWarmthInvalidate(t *testing.T) {
	w := NewWarmth()
	k := Key{Region: 2, Socket: 1}
	w.MarkWarm(k)
	w.Invalidate(k)
	if w.IsWarm(k) {
		t.Error("Invalidate did not reset warmth")
	}
	if got := w.RemainingCold(k, 5e9); got != 5e9 {
		t.Errorf("RemainingCold after Invalidate = %g, want 5e9", got)
	}
}

func TestNegativeRecordIgnored(t *testing.T) {
	w := NewWarmth()
	k := Key{Region: 3, Socket: 0}
	w.Record(k, -100, 1000)
	if got := w.RemainingCold(k, 1000); got != 1000 {
		t.Errorf("RemainingCold = %g, want 1000 (negative bytes ignored)", got)
	}
}
