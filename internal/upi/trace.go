package upi

import (
	"fmt"

	"repro/internal/simtrace"
)

// TraceWarmup emits the directory warm-up phase of one (region, socket) pair
// as a span: the window during which far reads crawl at the cold cap while
// address-space mappings are reassigned (Section 3.4). The span ends at the
// instant the pair flips warm.
func TraceWarmup(p *simtrace.Process, tid int, k Key, startSec, durSec, coldBytes float64) {
	p.Span(simtrace.CatUPI, fmt.Sprintf("directory warm-up r%d s%d", k.Region, k.Socket),
		tid, startSec, durSec,
		simtrace.F("region", float64(k.Region)),
		simtrace.F("socket", float64(k.Socket)),
		simtrace.F("cold_bytes", coldBytes),
	)
}

// TraceLink emits one run's traffic over a directed UPI link as a span with
// the data and request byte volumes (Section 3.5's per-direction accounting).
func TraceLink(p *simtrace.Process, tid, from, to int, startSec, durSec, dataBytes, reqBytes float64) {
	gbps := 0.0
	if durSec > 0 {
		gbps = dataBytes / durSec / 1e9
	}
	p.Span(simtrace.CatUPI, fmt.Sprintf("upi s%d->s%d", from, to), tid, startSec, durSec,
		simtrace.F("data_bytes", dataBytes),
		simtrace.F("req_bytes", reqBytes),
		simtrace.F("data_gbps", gbps),
	)
}

// TraceWarmEvent emits an instant for an explicit warmth transition — the
// paper's single-thread pre-read trick (MarkWarm) or a mapping invalidation.
func TraceWarmEvent(p *simtrace.Process, tid int, name string, k Key, atSec float64) {
	p.Instant(simtrace.CatUPI, name, tid, atSec,
		simtrace.F("region", float64(k.Region)),
		simtrace.F("socket", float64(k.Socket)),
	)
}
