// Package upi models the Intel Ultra Path Interconnect between the two
// sockets: per-direction capacity with metadata overhead (Section 3.5: "the
// UPI achieves ~40 GB/s per direction but about 25% of this is required for
// metadata"), and the directory-remapping warm-up behaviour of first-time
// cross-socket access (Section 3.4: the first far read of a memory region
// runs at ~8 GB/s; once address-space mappings are reassigned, subsequent
// runs reach ~33 GB/s).
package upi

import "math"

// Params holds the UPI model constants.
type Params struct {
	// RawBytesPerSecPerDir is the raw link bandwidth per direction (40 GB/s).
	RawBytesPerSecPerDir float64
	// DataCostFactor is the link bytes consumed on the data-carrying
	// direction per application byte (payload + headers + the metadata share
	// that travels with the data). 1.2 yields the ~33 GB/s warm far-read
	// ceiling of Figure 5.
	DataCostFactor float64
	// RequestCostFactor is the link bytes consumed on the opposite direction
	// (requests, acknowledgements, snoops) per application byte. Together
	// with DataCostFactor it reproduces the ~50 GB/s two-socket far-read
	// plateau of Figure 6a.
	RequestCostFactor float64
	// ColdReadCapBytesPerSec is the aggregate bandwidth of first-touch far
	// reads while the coherency directory is being remapped (~8 GB/s,
	// Figure 5 "Far").
	ColdReadCapBytesPerSec float64
	// ColdRefThreads and ColdThreadExponent shape the cold cap's decline
	// with thread count: the paper observes the optimal far thread count
	// shifting from 18 to 4, with more threads making the first run worse.
	ColdRefThreads     float64
	ColdThreadExponent float64
}

// DefaultParams returns the calibrated UPI model for the paper's platform.
func DefaultParams() Params {
	return Params{
		RawBytesPerSecPerDir:   40e9,
		DataCostFactor:         1.2,
		RequestCostFactor:      0.35,
		ColdReadCapBytesPerSec: 8e9,
		ColdRefThreads:         4,
		ColdThreadExponent:     0.25,
	}
}

// ColdCap returns the aggregate bandwidth available to cold (first-touch)
// far reads when `threads` threads contend for the directory remapping.
func (p Params) ColdCap(threads int) float64 {
	t := float64(threads)
	if t < p.ColdRefThreads {
		t = p.ColdRefThreads
	}
	return p.ColdReadCapBytesPerSec * math.Pow(p.ColdRefThreads/t, p.ColdThreadExponent)
}

// WarmFarReadCap returns the per-flow-group ceiling for warm far reads: the
// data direction of the link divided by the data cost factor.
func (p Params) WarmFarReadCap() float64 {
	return p.RawBytesPerSecPerDir / p.DataCostFactor
}

// Key identifies a warmth state: one memory region as seen from one
// accessing socket.
type Key struct {
	Region int // machine-assigned region ID
	Socket int // the *accessing* socket
}

// Warmth tracks which (region, socket) pairs have completed their cold
// first pass. A region becomes warm for a socket once that socket has
// far-read the region's full extent (every first-touch triggers a directory
// remap, so the whole first run is cold; the second run is warm), or when
// explicitly marked (the paper's single-thread pre-read trick).
type Warmth struct {
	progress map[Key]float64
	warm     map[Key]bool
}

// NewWarmth creates an empty warmth tracker.
func NewWarmth() *Warmth {
	return &Warmth{progress: make(map[Key]float64), warm: make(map[Key]bool)}
}

// IsWarm reports whether the pair has completed its cold pass.
func (w *Warmth) IsWarm(k Key) bool { return w.warm[k] }

// Record adds cold far-read progress; once cumulative bytes reach
// regionBytes the pair becomes warm.
func (w *Warmth) Record(k Key, bytes float64, regionBytes int64) {
	if w.warm[k] || bytes <= 0 {
		return
	}
	w.progress[k] += bytes
	if w.progress[k] >= float64(regionBytes) {
		w.warm[k] = true
	}
}

// RemainingCold returns how many cold bytes are left before the pair warms.
func (w *Warmth) RemainingCold(k Key, regionBytes int64) float64 {
	if w.warm[k] {
		return 0
	}
	rem := float64(regionBytes) - w.progress[k]
	if rem < 0 {
		return 0
	}
	return rem
}

// MarkWarm forces the pair warm (e.g., after a deliberate pre-read, or when
// constructing an already-touched data set).
func (w *Warmth) MarkWarm(k Key) { w.warm[k] = true }

// Invalidate resets a pair to cold (the mapping was reassigned to the other
// socket: "if access to the same memory regions is constantly switching
// between sockets, constant remapping is required", Section 3.4).
func (w *Warmth) Invalidate(k Key) {
	delete(w.warm, k)
	delete(w.progress, k)
}
