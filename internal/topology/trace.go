package topology

import "repro/internal/simtrace"

// TraceInfo emits the machine's structural layout as an instant event, so a
// timeline is self-describing: a reader can tell how many sockets, channels,
// and cores the traced run was simulated on without the original config.
func (t *Topology) TraceInfo(p *simtrace.Process, tid int, atSec float64) {
	p.Instant(simtrace.CatTopology, "topology", tid, atSec,
		simtrace.F("sockets", float64(t.Sockets())),
		simtrace.F("nodes", float64(t.Nodes())),
		simtrace.F("phys_cores", float64(t.PhysCores())),
		simtrace.F("logical_cores", float64(t.LogicalCores())),
		simtrace.F("channels_per_socket", float64(t.ChannelsPerSocket())),
		simtrace.F("pmem_dimms", float64(t.PMEMDIMMs())),
		simtrace.F("pmem_socket_bytes", float64(t.PMEMSocketBytes())),
		simtrace.F("dram_socket_bytes", float64(t.DRAMSocketBytes())),
	)
}
