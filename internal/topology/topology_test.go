package topology

import (
	"testing"
	"testing/quick"
)

func defaultTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := New(DefaultServer())
	if err != nil {
		t.Fatalf("New(DefaultServer()): %v", err)
	}
	return topo
}

func TestDefaultServerCounts(t *testing.T) {
	topo := defaultTopo(t)
	if got, want := topo.Sockets(), 2; got != want {
		t.Errorf("Sockets() = %d, want %d", got, want)
	}
	if got, want := topo.Nodes(), 4; got != want {
		t.Errorf("Nodes() = %d, want %d", got, want)
	}
	if got, want := topo.PhysCores(), 36; got != want {
		t.Errorf("PhysCores() = %d, want %d", got, want)
	}
	if got, want := topo.LogicalCores(), 72; got != want {
		t.Errorf("LogicalCores() = %d, want %d", got, want)
	}
	if got, want := topo.PhysCoresPerSocket(), 18; got != want {
		t.Errorf("PhysCoresPerSocket() = %d, want %d", got, want)
	}
	if got, want := topo.ChannelsPerSocket(), 6; got != want {
		t.Errorf("ChannelsPerSocket() = %d, want %d", got, want)
	}
	if got, want := topo.PMEMDIMMs(), 12; got != want {
		t.Errorf("PMEMDIMMs() = %d, want %d", got, want)
	}
}

func TestDefaultServerCapacities(t *testing.T) {
	topo := defaultTopo(t)
	// Section 2.3: 1.5 TB PMEM total, 186 GB DRAM total (paper rounds
	// 192 GiB down; we check the exact binary sizes).
	if got, want := topo.PMEMSocketBytes(), int64(6*128)<<30; got != want {
		t.Errorf("PMEMSocketBytes() = %d, want %d", got, want)
	}
	if got, want := topo.DRAMSocketBytes(), int64(6*16)<<30; got != want {
		t.Errorf("DRAMSocketBytes() = %d, want %d", got, want)
	}
	if got, want := topo.DRAMNodeBytes(), int64(3*16)<<30; got != want {
		t.Errorf("DRAMNodeBytes() = %d, want %d", got, want)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := DefaultServer(); c.Sockets = 0; return c }(),
		func() Config { c := DefaultServer(); c.NodesPerSocket = 0; return c }(),
		func() Config { c := DefaultServer(); c.PhysCoresPerNode = -1; return c }(),
		func() Config { c := DefaultServer(); c.IMCsPerSocket = 0; return c }(),
		func() Config { c := DefaultServer(); c.InterleaveBytes = 0; return c }(),
		func() Config { c := DefaultServer(); c.PMEMDIMMBytes = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New() accepted invalid config %+v", i, cfg)
		}
	}
}

func TestCoreMapping(t *testing.T) {
	topo := defaultTopo(t)
	cases := []struct {
		core   CoreID
		socket SocketID
		node   NodeID
		isHT   bool
	}{
		{0, 0, 0, false},
		{8, 0, 0, false},
		{9, 0, 1, false},
		{17, 0, 1, false},
		{18, 1, 2, false},
		{35, 1, 3, false},
		{36, 0, 0, true}, // HT sibling of core 0
		{53, 0, 1, true}, // HT sibling of core 17
		{54, 1, 2, true}, // HT sibling of core 18
		{71, 1, 3, true}, // HT sibling of core 35
	}
	for _, c := range cases {
		if got := topo.SocketOfCore(c.core); got != c.socket {
			t.Errorf("SocketOfCore(%d) = %d, want %d", c.core, got, c.socket)
		}
		if got := topo.NodeOfCore(c.core); got != c.node {
			t.Errorf("NodeOfCore(%d) = %d, want %d", c.core, got, c.node)
		}
		if got := topo.IsHyperthread(c.core); got != c.isHT {
			t.Errorf("IsHyperthread(%d) = %t, want %t", c.core, got, c.isHT)
		}
	}
}

func TestSiblingInvolution(t *testing.T) {
	topo := defaultTopo(t)
	for c := CoreID(0); int(c) < topo.LogicalCores(); c++ {
		sib, ok := topo.SiblingOf(c)
		if !ok {
			t.Fatalf("SiblingOf(%d): hyperthreading unexpectedly disabled", c)
		}
		if sib == c {
			t.Errorf("SiblingOf(%d) = itself", c)
		}
		back, _ := topo.SiblingOf(sib)
		if back != c {
			t.Errorf("SiblingOf(SiblingOf(%d)) = %d, want %d", c, back, c)
		}
		if topo.PhysicalOf(sib) != topo.PhysicalOf(c) {
			t.Errorf("sibling of %d on different physical core", c)
		}
	}
}

func TestSiblingWithoutHT(t *testing.T) {
	cfg := DefaultServer()
	cfg.HyperThreading = false
	topo := MustNew(cfg)
	if topo.LogicalCores() != topo.PhysCores() {
		t.Errorf("LogicalCores() = %d, want %d without HT", topo.LogicalCores(), topo.PhysCores())
	}
	if _, ok := topo.SiblingOf(0); ok {
		t.Error("SiblingOf reported a sibling with HT disabled")
	}
}

func TestCoresOfSocketOrdering(t *testing.T) {
	topo := defaultTopo(t)
	for s := SocketID(0); int(s) < topo.Sockets(); s++ {
		cores := topo.CoresOfSocket(s)
		if len(cores) != topo.LogicalCoresPerSocket() {
			t.Fatalf("CoresOfSocket(%d) returned %d cores, want %d", s, len(cores), topo.LogicalCoresPerSocket())
		}
		// Physical cores first, then hyperthreads.
		for i, c := range cores {
			if got := topo.SocketOfCore(c); got != s {
				t.Errorf("core %d listed for socket %d but belongs to %d", c, s, got)
			}
			wantHT := i >= topo.PhysCoresPerSocket()
			if got := topo.IsHyperthread(c); got != wantHT {
				t.Errorf("CoresOfSocket(%d)[%d] = core %d, IsHyperthread = %t, want %t", s, i, c, got, wantHT)
			}
		}
	}
}

func TestCoresOfNode(t *testing.T) {
	topo := defaultTopo(t)
	seen := make(map[CoreID]NodeID)
	for n := NodeID(0); int(n) < topo.Nodes(); n++ {
		cores := topo.CoresOfNode(n)
		if len(cores) != 18 { // 9 physical + 9 HT
			t.Fatalf("CoresOfNode(%d) returned %d cores, want 18", n, len(cores))
		}
		for _, c := range cores {
			if prev, dup := seen[c]; dup {
				t.Errorf("core %d listed for nodes %d and %d", c, prev, n)
			}
			seen[c] = n
			if got := topo.NodeOfCore(c); got != n {
				t.Errorf("NodeOfCore(%d) = %d, want %d", c, got, n)
			}
		}
	}
	if len(seen) != topo.LogicalCores() {
		t.Errorf("nodes covered %d cores, want all %d", len(seen), topo.LogicalCores())
	}
}

func TestDIMMMapping(t *testing.T) {
	topo := defaultTopo(t)
	cases := []struct {
		dimm   DIMMID
		socket SocketID
		imc    IMCID
	}{
		{0, 0, 0}, {2, 0, 0}, {3, 0, 1}, {5, 0, 1},
		{6, 1, 2}, {8, 1, 2}, {9, 1, 3}, {11, 1, 3},
	}
	for _, c := range cases {
		if got := topo.SocketOfDIMM(c.dimm); got != c.socket {
			t.Errorf("SocketOfDIMM(%d) = %d, want %d", c.dimm, got, c.socket)
		}
		if got := topo.IMCOfDIMM(c.dimm); got != c.imc {
			t.Errorf("IMCOfDIMM(%d) = %d, want %d", c.dimm, got, c.imc)
		}
	}
}

func TestDIMMsOfSocket(t *testing.T) {
	topo := defaultTopo(t)
	d0 := topo.DIMMsOfSocket(0)
	d1 := topo.DIMMsOfSocket(1)
	if len(d0) != 6 || len(d1) != 6 {
		t.Fatalf("DIMMsOfSocket lengths = %d, %d, want 6, 6", len(d0), len(d1))
	}
	if d0[0] != 0 || d0[5] != 5 || d1[0] != 6 || d1[5] != 11 {
		t.Errorf("DIMMsOfSocket returned %v and %v", d0, d1)
	}
}

func TestFarSocket(t *testing.T) {
	topo := defaultTopo(t)
	if got := topo.FarSocket(0); got != 1 {
		t.Errorf("FarSocket(0) = %d, want 1", got)
	}
	if got := topo.FarSocket(1); got != 0 {
		t.Errorf("FarSocket(1) = %d, want 0", got)
	}
}

// Property: for any valid small config, every logical core maps to exactly one
// node, the node belongs to the core's socket, and socket core lists partition
// the logical cores.
func TestCorePartitionProperty(t *testing.T) {
	f := func(sockets, nodes, cores uint8, ht bool) bool {
		cfg := Config{
			Sockets:          int(sockets%3) + 1,
			NodesPerSocket:   int(nodes%3) + 1,
			PhysCoresPerNode: int(cores%5) + 1,
			HyperThreading:   ht,
			IMCsPerSocket:    1,
			ChannelsPerIMC:   3,
			PMEMDIMMBytes:    128 << 30,
			DRAMDIMMBytes:    16 << 30,
			InterleaveBytes:  4096,
		}
		topo, err := New(cfg)
		if err != nil {
			return false
		}
		seen := make(map[CoreID]bool)
		for s := SocketID(0); int(s) < topo.Sockets(); s++ {
			for _, c := range topo.CoresOfSocket(s) {
				if seen[c] {
					return false
				}
				seen[c] = true
				if topo.SocketOfCore(c) != s {
					return false
				}
				node := topo.NodeOfCore(c)
				if int(node)/cfg.NodesPerSocket != int(s) {
					return false
				}
			}
		}
		return len(seen) == topo.LogicalCores()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
