// Package topology describes the hardware layout of the modeled server:
// sockets, NUMA nodes and regions, physical and logical cores, integrated
// memory controllers (iMCs), memory channels, and DIMM slots.
//
// The default configuration mirrors the paper's evaluation platform
// (Section 2.3): a dual-socket Intel Xeon Gold 5220S system with 18 physical
// cores per socket (36 with hyperthreading), two iMCs per socket with three
// memory channels each, one 128 GB Optane DIMM and one 16 GB DRAM DIMM per
// channel, and a UPI interconnect between the sockets. Each socket forms one
// NUMA *region* made of two NUMA *nodes* (9 cores + 1 iMC + 3 channels each).
package topology

import "fmt"

// IDs are dense indices, global across the machine.
type (
	// SocketID identifies a CPU socket (a NUMA region in the paper's terms).
	SocketID int
	// NodeID identifies a NUMA node. Each socket holds NodesPerSocket nodes.
	NodeID int
	// CoreID identifies a logical core. Physical cores are numbered first
	// (0..P-1 across the machine), hyperthread siblings follow (P..2P-1),
	// matching the common Linux enumeration on Xeon servers.
	CoreID int
	// DIMMID identifies a PMEM DIMM slot, numbered socket-major as in the
	// paper's Figure 2 (#0..#5 on socket 0, #6..#11 on socket 1).
	DIMMID int
	// ChannelID identifies a memory channel, numbered like DIMMs.
	ChannelID int
	// IMCID identifies an integrated memory controller (2 per socket).
	IMCID int
)

// Config holds the structural parameters of a machine.
type Config struct {
	Sockets          int
	NodesPerSocket   int
	PhysCoresPerNode int
	HyperThreading   bool
	IMCsPerSocket    int
	ChannelsPerIMC   int
	PMEMDIMMBytes    int64 // capacity of one Optane DIMM
	DRAMDIMMBytes    int64 // capacity of one DRAM DIMM
	InterleaveBytes  int64 // PMEM DIMM interleaving granularity (Figure 2)
}

// DefaultServer returns the paper's benchmark platform (Section 2.3).
func DefaultServer() Config {
	return Config{
		Sockets:          2,
		NodesPerSocket:   2,
		PhysCoresPerNode: 9,
		HyperThreading:   true,
		IMCsPerSocket:    2,
		ChannelsPerIMC:   3,
		PMEMDIMMBytes:    128 << 30, // 128 GiB Optane DIMM
		DRAMDIMMBytes:    16 << 30,  // 16 GiB DDR4 DIMM
		InterleaveBytes:  4 << 10,   // 4 KiB striping across the 6 DIMMs
	}
}

// FourSocketServer returns a hypothetical four-socket variant of the
// evaluation platform — used to check that the model generalizes beyond the
// paper's dual-socket machine (the paper targets "large, multi-socket
// servers" in general).
func FourSocketServer() Config {
	c := DefaultServer()
	c.Sockets = 4
	return c
}

// Validate reports an error for structurally impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.Sockets < 1:
		return fmt.Errorf("topology: need at least one socket, got %d", c.Sockets)
	case c.NodesPerSocket < 1:
		return fmt.Errorf("topology: need at least one node per socket, got %d", c.NodesPerSocket)
	case c.PhysCoresPerNode < 1:
		return fmt.Errorf("topology: need at least one core per node, got %d", c.PhysCoresPerNode)
	case c.IMCsPerSocket < 1 || c.ChannelsPerIMC < 1:
		return fmt.Errorf("topology: need at least one iMC and channel per socket")
	case c.InterleaveBytes <= 0:
		return fmt.Errorf("topology: interleave granularity must be positive, got %d", c.InterleaveBytes)
	case c.PMEMDIMMBytes <= 0 || c.DRAMDIMMBytes <= 0:
		return fmt.Errorf("topology: DIMM capacities must be positive")
	}
	return nil
}

// Topology answers structural queries about a configured machine.
type Topology struct {
	cfg Config
}

// New builds a Topology, validating the configuration.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Topology{cfg: cfg}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// Sockets returns the number of CPU sockets.
func (t *Topology) Sockets() int { return t.cfg.Sockets }

// Nodes returns the total number of NUMA nodes.
func (t *Topology) Nodes() int { return t.cfg.Sockets * t.cfg.NodesPerSocket }

// PhysCoresPerSocket returns physical cores on one socket.
func (t *Topology) PhysCoresPerSocket() int {
	return t.cfg.NodesPerSocket * t.cfg.PhysCoresPerNode
}

// PhysCores returns the total number of physical cores.
func (t *Topology) PhysCores() int { return t.cfg.Sockets * t.PhysCoresPerSocket() }

// LogicalCores returns the total number of logical cores.
func (t *Topology) LogicalCores() int {
	if t.cfg.HyperThreading {
		return 2 * t.PhysCores()
	}
	return t.PhysCores()
}

// LogicalCoresPerSocket returns logical cores on one socket.
func (t *Topology) LogicalCoresPerSocket() int { return t.LogicalCores() / t.cfg.Sockets }

// ChannelsPerSocket returns memory channels on one socket.
func (t *Topology) ChannelsPerSocket() int { return t.cfg.IMCsPerSocket * t.cfg.ChannelsPerIMC }

// PMEMDIMMs returns the total number of Optane DIMMs in the machine.
func (t *Topology) PMEMDIMMs() int { return t.cfg.Sockets * t.ChannelsPerSocket() }

// PMEMSocketBytes returns the interleaved PMEM capacity of one socket.
func (t *Topology) PMEMSocketBytes() int64 {
	return int64(t.ChannelsPerSocket()) * t.cfg.PMEMDIMMBytes
}

// DRAMSocketBytes returns the DRAM capacity of one socket.
func (t *Topology) DRAMSocketBytes() int64 {
	return int64(t.ChannelsPerSocket()) * t.cfg.DRAMDIMMBytes
}

// DRAMNodeBytes returns the DRAM capacity local to one NUMA node.
func (t *Topology) DRAMNodeBytes() int64 {
	return t.DRAMSocketBytes() / int64(t.cfg.NodesPerSocket)
}

// SocketOfCore returns the socket a logical core belongs to.
func (t *Topology) SocketOfCore(c CoreID) SocketID {
	p := t.PhysicalOf(c)
	return SocketID(int(p) / t.PhysCoresPerSocket())
}

// NodeOfCore returns the NUMA node a logical core belongs to.
func (t *Topology) NodeOfCore(c CoreID) NodeID {
	p := t.PhysicalOf(c)
	return NodeID(int(p) / t.cfg.PhysCoresPerNode)
}

// PhysicalOf maps a logical core to its physical core index.
func (t *Topology) PhysicalOf(c CoreID) CoreID {
	if int(c) >= t.PhysCores() {
		return c - CoreID(t.PhysCores())
	}
	return c
}

// IsHyperthread reports whether the logical core is the second context of a
// physical core.
func (t *Topology) IsHyperthread(c CoreID) bool { return int(c) >= t.PhysCores() }

// SiblingOf returns the other logical core sharing the same physical core,
// and false if hyperthreading is disabled.
func (t *Topology) SiblingOf(c CoreID) (CoreID, bool) {
	if !t.cfg.HyperThreading {
		return c, false
	}
	if t.IsHyperthread(c) {
		return c - CoreID(t.PhysCores()), true
	}
	return c + CoreID(t.PhysCores()), true
}

// CoresOfSocket lists the logical cores of a socket, physical first, then
// hyperthread siblings, matching how the paper fills cores ("we fill up the
// physical cores before placing threads on the logical sibling cores").
func (t *Topology) CoresOfSocket(s SocketID) []CoreID {
	pcs := t.PhysCoresPerSocket()
	out := make([]CoreID, 0, t.LogicalCoresPerSocket())
	base := int(s) * pcs
	for i := 0; i < pcs; i++ {
		out = append(out, CoreID(base+i))
	}
	if t.cfg.HyperThreading {
		for i := 0; i < pcs; i++ {
			out = append(out, CoreID(base+i+t.PhysCores()))
		}
	}
	return out
}

// CoresOfNode lists the logical cores of a NUMA node, physical first.
func (t *Topology) CoresOfNode(n NodeID) []CoreID {
	pcn := t.cfg.PhysCoresPerNode
	out := make([]CoreID, 0, 2*pcn)
	base := int(n) * pcn
	for i := 0; i < pcn; i++ {
		out = append(out, CoreID(base+i))
	}
	if t.cfg.HyperThreading {
		for i := 0; i < pcn; i++ {
			out = append(out, CoreID(base+i+t.PhysCores()))
		}
	}
	return out
}

// SocketOfDIMM returns the socket a PMEM DIMM is attached to.
func (t *Topology) SocketOfDIMM(d DIMMID) SocketID {
	return SocketID(int(d) / t.ChannelsPerSocket())
}

// IMCOfDIMM returns the iMC serving a PMEM DIMM's channel.
func (t *Topology) IMCOfDIMM(d DIMMID) IMCID {
	local := int(d) % t.ChannelsPerSocket()
	return IMCID(int(t.SocketOfDIMM(d))*t.cfg.IMCsPerSocket + local/t.cfg.ChannelsPerIMC)
}

// DIMMsOfSocket lists the PMEM DIMMs of a socket, in interleave order.
func (t *Topology) DIMMsOfSocket(s SocketID) []DIMMID {
	n := t.ChannelsPerSocket()
	out := make([]DIMMID, n)
	for i := range out {
		out[i] = DIMMID(int(s)*n + i)
	}
	return out
}

// FarSocket returns a socket other than s (the remote NUMA region). For the
// two-socket default this is *the* far socket.
func (t *Topology) FarSocket(s SocketID) SocketID {
	return SocketID((int(s) + 1) % t.cfg.Sockets)
}
