// Package arena provides a typed slab (bump) allocator for hot-loop scratch
// objects. The SSB engines issue the same population of machine.Stream
// descriptors on every query; allocating them from the regular heap makes
// each warmed query pay thousands of allocations for structs whose lifetime
// ends when the run returns. An Arena hands out pointers from reusable
// slabs instead: Alloc is a bump of an index, Reset recycles everything
// while keeping the slabs, so a warmed caller's steady state is zero
// allocations per run.
//
// Pointers returned by Alloc are stable: slabs are never reallocated or
// moved, so a *T stays valid across later Allocs (growth appends a new slab)
// until the next Reset recycles it. An Arena is not safe for concurrent use;
// give each goroutine its own.
package arena

// Arena is a bump allocator over fixed-size slabs of T.
type Arena[T any] struct {
	slabs    [][]T
	slabSize int
	slab     int // index of the slab currently being filled (-1 = none)
	used     int // elements handed out from slabs[slab]
}

// New returns an arena whose slabs hold slabSize elements each.
func New[T any](slabSize int) *Arena[T] {
	if slabSize < 1 {
		slabSize = 64
	}
	return &Arena[T]{slabSize: slabSize, slab: -1}
}

// Alloc returns a pointer to a zeroed T. The pointer remains valid — and is
// never aliased by another Alloc — until the next Reset.
func (a *Arena[T]) Alloc() *T {
	if a.slab < 0 || a.used == len(a.slabs[a.slab]) {
		a.slab++
		if a.slab == len(a.slabs) {
			a.slabs = append(a.slabs, make([]T, a.slabSize))
		}
		a.used = 0
	}
	p := &a.slabs[a.slab][a.used]
	a.used++
	return p
}

// Live reports how many elements have been handed out since the last Reset.
func (a *Arena[T]) Live() int {
	if a.slab < 0 {
		return 0
	}
	return a.slab*a.slabSize + a.used
}

// Reset recycles every outstanding element: the slabs are kept, the handed
// out elements are zeroed so the next Alloc cycle starts clean. All pointers
// from before the Reset alias future Allocs and must not be used again.
func (a *Arena[T]) Reset() {
	var zero T
	for si := 0; si <= a.slab; si++ {
		s := a.slabs[si]
		n := len(s)
		if si == a.slab {
			n = a.used
		}
		for i := 0; i < n; i++ {
			s[i] = zero
		}
	}
	a.slab = -1
	a.used = 0
}
