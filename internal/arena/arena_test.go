package arena

import "testing"

func TestAllocZeroedAndDistinct(t *testing.T) {
	a := New[int](4)
	seen := map[*int]bool{}
	for i := 0; i < 10; i++ {
		p := a.Alloc()
		if *p != 0 {
			t.Fatalf("alloc %d: got %d, want zeroed", i, *p)
		}
		if seen[p] {
			t.Fatalf("alloc %d: pointer aliased before Reset", i)
		}
		seen[p] = true
		*p = i + 1
	}
	if got := a.Live(); got != 10 {
		t.Fatalf("Live = %d, want 10", got)
	}
}

func TestPointersStableAcrossGrowth(t *testing.T) {
	a := New[int](2)
	first := a.Alloc()
	*first = 42
	for i := 0; i < 100; i++ {
		a.Alloc()
	}
	if *first != 42 {
		t.Fatalf("first element changed to %d after growth", *first)
	}
}

func TestResetRecyclesAndZeroes(t *testing.T) {
	a := New[[2]int](3)
	for i := 0; i < 7; i++ {
		p := a.Alloc()
		p[0], p[1] = i, i
	}
	a.Reset()
	if got := a.Live(); got != 0 {
		t.Fatalf("Live after Reset = %d, want 0", got)
	}
	for i := 0; i < 7; i++ {
		p := a.Alloc()
		if p[0] != 0 || p[1] != 0 {
			t.Fatalf("alloc %d after Reset: got %v, want zeroed", i, *p)
		}
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	a := New[[16]byte](8)
	// Warm to the working-set size once.
	for i := 0; i < 50; i++ {
		a.Alloc()
	}
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			a.Alloc()
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warmed Alloc/Reset cycle allocates %.0f/op, want 0", allocs)
	}
}
