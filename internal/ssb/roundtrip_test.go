package ssb

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Round-trip test: export each table in dbgen's .tbl format, parse it back,
// and compare field by field against the generated structs. This pins the
// exact serialization (cents, 0/1 flags, ship-mode names, trailing pipe) so
// data exported for cross-validation in another SSB system stays loadable.

func splitRow(t *testing.T, line string, wantFields int) []string {
	t.Helper()
	if !strings.HasSuffix(line, "|") {
		t.Fatalf("row missing trailing pipe: %q", line)
	}
	f := strings.Split(strings.TrimSuffix(line, "|"), "|")
	if len(f) != wantFields {
		t.Fatalf("row has %d fields, want %d: %q", len(f), wantFields, line)
	}
	return f
}

func pUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("field %q: %v", s, err)
	}
	return v
}

func pBool(t *testing.T, s string) bool {
	t.Helper()
	switch s {
	case "0":
		return false
	case "1":
		return true
	}
	t.Fatalf("flag field %q, want 0 or 1", s)
	return false
}

func exportLines(t *testing.T, d *Data, table string) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, table); err != nil {
		t.Fatalf("WriteTable(%s): %v", table, err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestRoundTripLineorder(t *testing.T) {
	d := MustGenerate(0.01)
	shipModeCode := map[string]uint8{}
	for c := uint8(0); c < 7; c++ {
		shipModeCode[ShipModeName(c)] = c
	}
	lines := exportLines(t, d, "lineorder")
	if len(lines) != len(d.Lineorder) {
		t.Fatalf("%d rows, want %d", len(lines), len(d.Lineorder))
	}
	for i, line := range lines {
		want := &d.Lineorder[i]
		f := splitRow(t, line, 17)
		got := Lineorder{
			OrderKey:      pUint(t, f[0]),
			LineNumber:    uint8(pUint(t, f[1])),
			CustKey:       uint32(pUint(t, f[2])),
			PartKey:       uint32(pUint(t, f[3])),
			SuppKey:       uint32(pUint(t, f[4])),
			OrderDate:     uint32(pUint(t, f[5])),
			OrdPriority:   uint8(pUint(t, f[6])),
			ShipPriority:  uint8(pUint(t, f[7])),
			Quantity:      uint8(pUint(t, f[8])),
			ExtendedPrice: uint32(pUint(t, f[9])),
			OrdTotalPrice: uint32(pUint(t, f[10])),
			Discount:      uint8(pUint(t, f[11])),
			Revenue:       uint32(pUint(t, f[12])),
			SupplyCost:    uint32(pUint(t, f[13])),
			Tax:           uint8(pUint(t, f[14])),
			CommitDate:    uint32(pUint(t, f[15])),
		}
		mode, ok := shipModeCode[f[16]]
		if !ok {
			t.Fatalf("row %d: unknown ship mode %q", i, f[16])
		}
		got.ShipMode = mode
		if got != *want {
			t.Fatalf("row %d round-trips to %+v, want %+v", i, got, *want)
		}
	}
}

func TestRoundTripDimensions(t *testing.T) {
	d := MustGenerate(0.01)

	for i, line := range exportLines(t, d, "customer") {
		w := &d.Customer[i]
		f := splitRow(t, line, 8)
		got := Customer{uint32(pUint(t, f[0])), f[1], f[2], f[3], f[4], f[5], f[6], f[7]}
		if got != *w {
			t.Fatalf("customer %d: %+v, want %+v", i, got, *w)
		}
	}
	for i, line := range exportLines(t, d, "supplier") {
		w := &d.Supplier[i]
		f := splitRow(t, line, 7)
		got := Supplier{uint32(pUint(t, f[0])), f[1], f[2], f[3], f[4], f[5], f[6]}
		if got != *w {
			t.Fatalf("supplier %d: %+v, want %+v", i, got, *w)
		}
	}
	for i, line := range exportLines(t, d, "part") {
		w := &d.Part[i]
		f := splitRow(t, line, 9)
		got := Part{uint32(pUint(t, f[0])), f[1], f[2], f[3], f[4], f[5], f[6],
			uint8(pUint(t, f[7])), f[8]}
		if got != *w {
			t.Fatalf("part %d: %+v, want %+v", i, got, *w)
		}
	}
}

func parseDateRow(t *testing.T, line string) Date {
	t.Helper()
	f := splitRow(t, line, 16)
	return Date{
		DateKey:         uint32(pUint(t, f[0])),
		Date:            f[1],
		DayOfWeek:       f[2],
		Month:           f[3],
		Year:            uint16(pUint(t, f[4])),
		YearMonthNum:    uint32(pUint(t, f[5])),
		YearMonth:       f[6],
		DayNumInWeek:    uint8(pUint(t, f[7])),
		DayNumInMonth:   uint8(pUint(t, f[8])),
		DayNumInYear:    uint16(pUint(t, f[9])),
		MonthNumInYear:  uint8(pUint(t, f[10])),
		WeekNumInYear:   uint8(pUint(t, f[11])),
		SellingSeason:   f[12],
		LastDayInWeekFl: pBool(t, f[13]),
		HolidayFl:       pBool(t, f[14]),
		WeekdayFl:       pBool(t, f[15]),
	}
}

func TestRoundTripDate(t *testing.T) {
	d := MustGenerate(0.01)
	lines := exportLines(t, d, "date")
	if len(lines) != len(d.Date) {
		t.Fatalf("%d rows, want %d", len(lines), len(d.Date))
	}
	for i, line := range lines {
		got := parseDateRow(t, line)
		if got != d.Date[i] {
			t.Fatalf("date %d: %+v, want %+v", i, got, d.Date[i])
		}
	}
}

// TestRoundTripDateEdgeRows pins the calendar's edge rows: the benchmark's
// first and last day, the leap days inside the 1992-1998 range, and each
// year boundary — the rows most likely to break if date arithmetic changes.
func TestRoundTripDateEdgeRows(t *testing.T) {
	d := MustGenerate(0.01)
	byKey := map[uint32]Date{}
	for _, line := range exportLines(t, d, "date") {
		dt := parseDateRow(t, line)
		byKey[dt.DateKey] = dt
	}

	edges := []struct {
		key   uint32
		date  string
		month string
		day   uint8 // day-of-month
	}{
		{19920101, "January 1, 1992", "January", 1},
		{19981231, "December 31, 1998", "December", 31},
		{19920229, "February 29, 1992", "February", 29}, // leap day
		{19960229, "February 29, 1996", "February", 29}, // leap day
		{19921231, "December 31, 1992", "December", 31},
		{19930101, "January 1, 1993", "January", 1},
	}
	for _, e := range edges {
		got, ok := byKey[e.key]
		if !ok {
			t.Errorf("date key %d missing from export", e.key)
			continue
		}
		if got.Date != e.date || got.Month != e.month || got.DayNumInMonth != e.day {
			t.Errorf("key %d = %q/%q/day %d, want %q/%q/day %d",
				e.key, got.Date, got.Month, got.DayNumInMonth, e.date, e.month, e.day)
		}
		if want := d.DateByKey(e.key); want == nil || got != *want {
			t.Errorf("key %d export disagrees with DateByKey: %+v vs %v", e.key, got, want)
		}
	}
	// Non-leap years must not export a Feb 29.
	for _, key := range []uint32{19930229, 19940229, 19950229, 19970229, 19980229} {
		if _, ok := byKey[key]; ok {
			t.Errorf("non-leap-year key %d present in export", key)
		}
	}
	// 1992-1998 inclusive: five 365-day years plus the 1992 and 1996 leap
	// years = 2557 days.
	if len(byKey) != 2557 {
		t.Errorf("calendar has %d distinct days, want 2557", len(byKey))
	}
}
