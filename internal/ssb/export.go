package ssb

import (
	"bufio"
	"fmt"
	"io"
)

// TableNames lists the exportable tables in dbgen's naming.
func TableNames() []string {
	return []string{"lineorder", "customer", "supplier", "part", "date"}
}

// WriteTable writes one table in dbgen's pipe-delimited .tbl format, so the
// generated data can be loaded into any SSB-capable system for
// cross-validation. Monetary values are written in cents, flags as 0/1.
func WriteTable(w io.Writer, d *Data, table string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	switch table {
	case "lineorder":
		for i := range d.Lineorder {
			lo := &d.Lineorder[i]
			_, err = fmt.Fprintf(bw, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%s|\n",
				lo.OrderKey, lo.LineNumber, lo.CustKey, lo.PartKey, lo.SuppKey,
				lo.OrderDate, lo.OrdPriority, lo.ShipPriority, lo.Quantity,
				lo.ExtendedPrice, lo.OrdTotalPrice, lo.Discount, lo.Revenue,
				lo.SupplyCost, lo.Tax, lo.CommitDate, ShipModeName(lo.ShipMode))
			if err != nil {
				return err
			}
		}
	case "customer":
		for i := range d.Customer {
			c := &d.Customer[i]
			_, err = fmt.Fprintf(bw, "%d|%s|%s|%s|%s|%s|%s|%s|\n",
				c.CustKey, c.Name, c.Address, c.City, c.Nation, c.Region, c.Phone, c.MktSegment)
			if err != nil {
				return err
			}
		}
	case "supplier":
		for i := range d.Supplier {
			s := &d.Supplier[i]
			_, err = fmt.Fprintf(bw, "%d|%s|%s|%s|%s|%s|%s|\n",
				s.SuppKey, s.Name, s.Address, s.City, s.Nation, s.Region, s.Phone)
			if err != nil {
				return err
			}
		}
	case "part":
		for i := range d.Part {
			p := &d.Part[i]
			_, err = fmt.Fprintf(bw, "%d|%s|%s|%s|%s|%s|%s|%d|%s|\n",
				p.PartKey, p.Name, p.MFGR, p.Category, p.Brand1, p.Color, p.Type, p.Size, p.Container)
			if err != nil {
				return err
			}
		}
	case "date":
		for i := range d.Date {
			dt := &d.Date[i]
			_, err = fmt.Fprintf(bw, "%d|%s|%s|%s|%d|%d|%s|%d|%d|%d|%d|%d|%s|%d|%d|%d|\n",
				dt.DateKey, dt.Date, dt.DayOfWeek, dt.Month, dt.Year, dt.YearMonthNum,
				dt.YearMonth, dt.DayNumInWeek, dt.DayNumInMonth, dt.DayNumInYear,
				dt.MonthNumInYear, dt.WeekNumInYear, dt.SellingSeason,
				b2i(dt.LastDayInWeekFl), b2i(dt.HolidayFl), b2i(dt.WeekdayFl))
			if err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("ssb: unknown table %q (have %v)", table, TableNames())
	}
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
