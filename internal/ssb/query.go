package ssb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query is one SSB query as an executable specification. Both engines (the
// PMEM-aware handcrafted one and the Hyrise-like naive one) interpret the
// same specification, so their results can be compared row for row.
//
// A nil dimension filter means the query does not restrict that dimension;
// the Needs* flags say whether the dimension must be joined at all (for a
// filter or for a group-by column).
type Query struct {
	ID     string
	Flight int
	// SQL is the query's original SSB text (O'Neil et al.), for
	// documentation and display; the engines execute the structured spec
	// below, which tests verify against the reference executor.
	SQL string

	DateFilter func(*Date) bool
	CustFilter func(*Customer) bool
	SuppFilter func(*Supplier) bool
	PartFilter func(*Part) bool
	// LOFilter holds fact-local predicates (discount, quantity).
	LOFilter func(*Lineorder) bool

	NeedsCust, NeedsSupp, NeedsPart bool

	// GroupBy renders the group key; empty string for scalar aggregates.
	GroupBy func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string
	// GroupAppend, when non-nil, appends exactly GroupBy's bytes to dst
	// and returns it. Engines use it with a reusable buffer so the hot
	// aggregation loop allocates a key string only the first time a group
	// appears, not once per qualifying row
	// (TestGroupAppendMatchesGroupBy pins the equivalence).
	GroupAppend func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte
	// Aggregate returns the row's contribution (revenue or profit, cents).
	Aggregate func(lo *Lineorder) int64
	// OrderBy orders two result rows per the query's ORDER BY clause; nil
	// means ascending group key (which matches the flights whose keys embed
	// the ordering columns in position).
	OrderBy func(a, b ResultRow) bool
}

// ResultRow is one ordered output row.
type ResultRow struct {
	Key   string
	Value int64
}

// Result is a query result: group key -> aggregate (cents). Scalar queries
// use the single key "".
type Result map[string]int64

// String renders the result deterministically (sorted by group key).
func (r Result) String() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s\t%d\n", k, r[k])
	}
	return b.String()
}

// Rows returns the result as ordered rows per the query's ORDER BY.
func (r Result) Rows(q Query) []ResultRow {
	rows := make([]ResultRow, 0, len(r))
	for k, v := range r {
		rows = append(rows, ResultRow{Key: k, Value: v})
	}
	less := q.OrderBy
	if less == nil {
		less = func(a, b ResultRow) bool { return a.Key < b.Key }
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	return rows
}

// yearOfKey extracts the trailing |-separated field as the year; the
// flight-3 group keys are "c|s|year".
func yearOfKey(k string) string {
	if i := strings.LastIndexByte(k, '|'); i >= 0 {
		return k[i+1:]
	}
	return k
}

// byYearAscRevenueDesc is flight 3's ORDER BY d_year asc, revenue desc.
func byYearAscRevenueDesc(a, b ResultRow) bool {
	ya, yb := yearOfKey(a.Key), yearOfKey(b.Key)
	if ya != yb {
		return ya < yb
	}
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Key < b.Key
}

// Equal compares two results exactly.
func (r Result) Equal(o Result) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if o[k] != v {
			return false
		}
	}
	return true
}

// yearString renders a d_year group-by column. The calendar spans
// 1992..1998, so the common path is a table lookup instead of an
// allocation — GroupBy runs once per qualifying fact row, and the
// engines' hot loops are dominated by key rendering.
var yearStrings = [...]string{"1992", "1993", "1994", "1995", "1996", "1997", "1998"}

func yearString(y uint16) string {
	if y >= 1992 && y <= 1998 {
		return yearStrings[y-1992]
	}
	return strconv.Itoa(int(y))
}

func revenue(lo *Lineorder) int64 { return int64(lo.Revenue) }
func profit(lo *Lineorder) int64  { return int64(lo.Revenue) - int64(lo.SupplyCost) }
func discountedRevenue(lo *Lineorder) int64 {
	return int64(lo.ExtendedPrice) * int64(lo.Discount) / 100
}

// Queries returns the 13 SSB queries (O'Neil et al., Section 3; the paper's
// Section 6 runs exactly these).
func Queries() []Query {
	qs := []Query{
		{
			ID:         "Q1.1",
			SQL:        `select sum(lo_extendedprice*lo_discount) as revenue from lineorder, date where lo_orderdate = d_datekey and d_year = 1993 and lo_discount between 1 and 3 and lo_quantity < 25`,
			Flight:     1,
			DateFilter: func(d *Date) bool { return d.Year == 1993 },
			LOFilter: func(lo *Lineorder) bool {
				return lo.Discount >= 1 && lo.Discount <= 3 && lo.Quantity < 25
			},
			Aggregate: discountedRevenue,
		},
		{
			ID:         "Q1.2",
			SQL:        `select sum(lo_extendedprice*lo_discount) as revenue from lineorder, date where lo_orderdate = d_datekey and d_yearmonthnum = 199401 and lo_discount between 4 and 6 and lo_quantity between 26 and 35`,
			Flight:     1,
			DateFilter: func(d *Date) bool { return d.YearMonthNum == 199401 },
			LOFilter: func(lo *Lineorder) bool {
				return lo.Discount >= 4 && lo.Discount <= 6 && lo.Quantity >= 26 && lo.Quantity <= 35
			},
			Aggregate: discountedRevenue,
		},
		{
			ID:         "Q1.3",
			SQL:        `select sum(lo_extendedprice*lo_discount) as revenue from lineorder, date where lo_orderdate = d_datekey and d_weeknuminyear = 6 and d_year = 1994 and lo_discount between 5 and 7 and lo_quantity between 26 and 35`,
			Flight:     1,
			DateFilter: func(d *Date) bool { return d.WeekNumInYear == 6 && d.Year == 1994 },
			LOFilter: func(lo *Lineorder) bool {
				return lo.Discount >= 5 && lo.Discount <= 7 && lo.Quantity >= 26 && lo.Quantity <= 35
			},
			Aggregate: discountedRevenue,
		},
		{
			ID:     "Q2.1",
			SQL:    `select sum(lo_revenue), d_year, p_brand1 from lineorder, date, part, supplier where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey and p_category = 'MFGR#12' and s_region = 'AMERICA' group by d_year, p_brand1 order by d_year, p_brand1`,
			Flight: 2, NeedsPart: true, NeedsSupp: true,
			PartFilter: func(p *Part) bool { return p.Category == "MFGR#12" },
			SuppFilter: func(s *Supplier) bool { return s.Region == "AMERICA" },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + p.Brand1
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				return append(dst, p.Brand1...)
			},
			Aggregate: revenue,
		},
		{
			ID:     "Q2.2",
			SQL:    `select sum(lo_revenue), d_year, p_brand1 from lineorder, date, part, supplier where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey and p_brand1 between 'MFGR#2221' and 'MFGR#2228' and s_region = 'ASIA' group by d_year, p_brand1 order by d_year, p_brand1`,
			Flight: 2, NeedsPart: true, NeedsSupp: true,
			PartFilter: func(p *Part) bool {
				return p.Brand1 >= "MFGR#2221" && p.Brand1 <= "MFGR#2228"
			},
			SuppFilter: func(s *Supplier) bool { return s.Region == "ASIA" },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + p.Brand1
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				return append(dst, p.Brand1...)
			},
			Aggregate: revenue,
		},
		{
			ID:     "Q2.3",
			SQL:    `select sum(lo_revenue), d_year, p_brand1 from lineorder, date, part, supplier where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey and p_brand1 = 'MFGR#2221' and s_region = 'EUROPE' group by d_year, p_brand1 order by d_year, p_brand1`,
			Flight: 2, NeedsPart: true, NeedsSupp: true,
			PartFilter: func(p *Part) bool { return p.Brand1 == "MFGR#2221" },
			SuppFilter: func(s *Supplier) bool { return s.Region == "EUROPE" },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + p.Brand1
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				return append(dst, p.Brand1...)
			},
			Aggregate: revenue,
		},
		{
			ID:     "Q3.1",
			SQL:    `select c_nation, s_nation, d_year, sum(lo_revenue) as revenue from customer, lineorder, supplier, date where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey and c_region = 'ASIA' and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 group by c_nation, s_nation, d_year order by d_year asc, revenue desc`,
			Flight: 3, NeedsCust: true, NeedsSupp: true,
			CustFilter: func(c *Customer) bool { return c.Region == "ASIA" },
			SuppFilter: func(s *Supplier) bool { return s.Region == "ASIA" },
			DateFilter: func(d *Date) bool { return d.Year >= 1992 && d.Year <= 1997 },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return c.Nation + "|" + s.Nation + "|" + yearString(d.Year)
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, c.Nation...)
				dst = append(dst, '|')
				dst = append(dst, s.Nation...)
				dst = append(dst, '|')
				return append(dst, yearString(d.Year)...)
			},
			Aggregate: revenue,
			OrderBy:   byYearAscRevenueDesc,
		},
		{
			ID:     "Q3.2",
			SQL:    `select c_city, s_city, d_year, sum(lo_revenue) as revenue from customer, lineorder, supplier, date where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey and c_nation = 'UNITED STATES' and s_nation = 'UNITED STATES' and d_year >= 1992 and d_year <= 1997 group by c_city, s_city, d_year order by d_year asc, revenue desc`,
			Flight: 3, NeedsCust: true, NeedsSupp: true,
			CustFilter: func(c *Customer) bool { return c.Nation == "UNITED STATES" },
			SuppFilter: func(s *Supplier) bool { return s.Nation == "UNITED STATES" },
			DateFilter: func(d *Date) bool { return d.Year >= 1992 && d.Year <= 1997 },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return c.City + "|" + s.City + "|" + yearString(d.Year)
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, c.City...)
				dst = append(dst, '|')
				dst = append(dst, s.City...)
				dst = append(dst, '|')
				return append(dst, yearString(d.Year)...)
			},
			Aggregate: revenue,
			OrderBy:   byYearAscRevenueDesc,
		},
		{
			ID:     "Q3.3",
			SQL:    `select c_city, s_city, d_year, sum(lo_revenue) as revenue from customer, lineorder, supplier, date where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey and (c_city='UNITED KI1' or c_city='UNITED KI5') and (s_city='UNITED KI1' or s_city='UNITED KI5') and d_year >= 1992 and d_year <= 1997 group by c_city, s_city, d_year order by d_year asc, revenue desc`,
			Flight: 3, NeedsCust: true, NeedsSupp: true,
			CustFilter: func(c *Customer) bool { return c.City == "UNITED KI1" || c.City == "UNITED KI5" },
			SuppFilter: func(s *Supplier) bool { return s.City == "UNITED KI1" || s.City == "UNITED KI5" },
			DateFilter: func(d *Date) bool { return d.Year >= 1992 && d.Year <= 1997 },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return c.City + "|" + s.City + "|" + yearString(d.Year)
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, c.City...)
				dst = append(dst, '|')
				dst = append(dst, s.City...)
				dst = append(dst, '|')
				return append(dst, yearString(d.Year)...)
			},
			Aggregate: revenue,
			OrderBy:   byYearAscRevenueDesc,
		},
		{
			ID:     "Q3.4",
			SQL:    `select c_city, s_city, d_year, sum(lo_revenue) as revenue from customer, lineorder, supplier, date where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey and (c_city='UNITED KI1' or c_city='UNITED KI5') and (s_city='UNITED KI1' or s_city='UNITED KI5') and d_yearmonth = 'Dec1997' group by c_city, s_city, d_year order by d_year asc, revenue desc`,
			Flight: 3, NeedsCust: true, NeedsSupp: true,
			CustFilter: func(c *Customer) bool { return c.City == "UNITED KI1" || c.City == "UNITED KI5" },
			SuppFilter: func(s *Supplier) bool { return s.City == "UNITED KI1" || s.City == "UNITED KI5" },
			DateFilter: func(d *Date) bool { return d.YearMonth == "Dec1997" },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return c.City + "|" + s.City + "|" + yearString(d.Year)
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, c.City...)
				dst = append(dst, '|')
				dst = append(dst, s.City...)
				dst = append(dst, '|')
				return append(dst, yearString(d.Year)...)
			},
			Aggregate: revenue,
			OrderBy:   byYearAscRevenueDesc,
		},
		{
			ID:     "Q4.1",
			SQL:    `select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit from date, customer, supplier, part, lineorder where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey and lo_orderdate = d_datekey and c_region = 'AMERICA' and s_region = 'AMERICA' and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') group by d_year, c_nation order by d_year, c_nation`,
			Flight: 4, NeedsCust: true, NeedsSupp: true, NeedsPart: true,
			CustFilter: func(c *Customer) bool { return c.Region == "AMERICA" },
			SuppFilter: func(s *Supplier) bool { return s.Region == "AMERICA" },
			PartFilter: func(p *Part) bool { return p.MFGR == "MFGR#1" || p.MFGR == "MFGR#2" },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + c.Nation
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				return append(dst, c.Nation...)
			},
			Aggregate: profit,
		},
		{
			ID:     "Q4.2",
			SQL:    `select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit from date, customer, supplier, part, lineorder where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey and lo_orderdate = d_datekey and c_region = 'AMERICA' and s_region = 'AMERICA' and (d_year = 1997 or d_year = 1998) and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') group by d_year, s_nation, p_category order by d_year, s_nation, p_category`,
			Flight: 4, NeedsCust: true, NeedsSupp: true, NeedsPart: true,
			CustFilter: func(c *Customer) bool { return c.Region == "AMERICA" },
			SuppFilter: func(s *Supplier) bool { return s.Region == "AMERICA" },
			PartFilter: func(p *Part) bool { return p.MFGR == "MFGR#1" || p.MFGR == "MFGR#2" },
			DateFilter: func(d *Date) bool { return d.Year == 1997 || d.Year == 1998 },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + s.Nation + "|" + p.Category
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				dst = append(dst, s.Nation...)
				dst = append(dst, '|')
				return append(dst, p.Category...)
			},
			Aggregate: profit,
		},
		{
			ID:     "Q4.3",
			SQL:    `select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit from date, customer, supplier, part, lineorder where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey and lo_orderdate = d_datekey and c_region = 'AMERICA' and s_nation = 'UNITED STATES' and (d_year = 1997 or d_year = 1998) and p_category = 'MFGR#14' group by d_year, s_city, p_brand1 order by d_year, s_city, p_brand1`,
			Flight: 4, NeedsCust: true, NeedsSupp: true, NeedsPart: true,
			CustFilter: func(c *Customer) bool { return c.Region == "AMERICA" },
			SuppFilter: func(s *Supplier) bool { return s.Nation == "UNITED STATES" },
			PartFilter: func(p *Part) bool { return p.Category == "MFGR#14" },
			DateFilter: func(d *Date) bool { return d.Year == 1997 || d.Year == 1998 },
			GroupBy: func(lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) string {
				return yearString(d.Year) + "|" + s.City + "|" + p.Brand1
			},
			GroupAppend: func(dst []byte, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part) []byte {
				dst = append(dst, yearString(d.Year)...)
				dst = append(dst, '|')
				dst = append(dst, s.City...)
				dst = append(dst, '|')
				return append(dst, p.Brand1...)
			},
			Aggregate: profit,
		},
	}
	return qs
}

// QueryByID returns the query with the given ID ("Q2.1").
func QueryByID(id string) (Query, error) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("ssb: no query %q", id)
}

// Reference executes the query naively over the decoded structs — the
// correctness oracle both engines are tested against.
func Reference(d *Data, q Query) Result {
	res := Result{}
	for i := range d.Lineorder {
		lo := &d.Lineorder[i]
		if q.LOFilter != nil && !q.LOFilter(lo) {
			continue
		}
		date := d.DateByKey(lo.OrderDate)
		if q.DateFilter != nil && !q.DateFilter(date) {
			continue
		}
		var c *Customer
		if q.NeedsCust {
			c = d.CustomerByKey(lo.CustKey)
			if q.CustFilter != nil && !q.CustFilter(c) {
				continue
			}
		}
		var s *Supplier
		if q.NeedsSupp {
			s = d.SupplierByKey(lo.SuppKey)
			if q.SuppFilter != nil && !q.SuppFilter(s) {
				continue
			}
		}
		var p *Part
		if q.NeedsPart {
			p = d.PartByKey(lo.PartKey)
			if q.PartFilter != nil && !q.PartFilter(p) {
				continue
			}
		}
		key := ""
		if q.GroupBy != nil {
			key = q.GroupBy(lo, date, c, s, p)
		}
		res[key] += q.Aggregate(lo)
	}
	return res
}

// Selectivities reports, for planning and traffic scaling, the fraction of
// each dimension passing the query's filter.
type Selectivities struct {
	Date, Cust, Supp, Part float64
}

// Measure computes the query's dimension selectivities on the data set.
func Measure(d *Data, q Query) Selectivities {
	sel := Selectivities{Date: 1, Cust: 1, Supp: 1, Part: 1}
	if q.DateFilter != nil {
		n := 0
		for i := range d.Date {
			if q.DateFilter(&d.Date[i]) {
				n++
			}
		}
		sel.Date = float64(n) / float64(len(d.Date))
	}
	if q.CustFilter != nil {
		n := 0
		for i := range d.Customer {
			if q.CustFilter(&d.Customer[i]) {
				n++
			}
		}
		sel.Cust = float64(n) / float64(len(d.Customer))
	}
	if q.SuppFilter != nil {
		n := 0
		for i := range d.Supplier {
			if q.SuppFilter(&d.Supplier[i]) {
				n++
			}
		}
		sel.Supp = float64(n) / float64(len(d.Supplier))
	}
	if q.PartFilter != nil {
		n := 0
		for i := range d.Part {
			if q.PartFilter(&d.Part[i]) {
				n++
			}
		}
		sel.Part = float64(n) / float64(len(d.Part))
	}
	return sel
}
