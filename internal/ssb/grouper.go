package ssb

import "repro/internal/arena"

// Grouper accumulates per-group aggregate sums for one query execution
// without per-row allocations. Sums live behind pointers so the hot path is
// a non-allocating map lookup with a reusable key buffer (a key string is
// built only the first time its group appears), and the sums themselves come
// from a slab arena so repeated executions on a warmed Grouper reach a
// steady state of zero allocations per row.
//
// A Grouper is not safe for concurrent use; parallel engines give each
// worker its own and merge the emitted results.
type Grouper struct {
	groups map[string]*int64
	sums   *arena.Arena[int64]
	kbuf   []byte
}

// NewGrouper returns an empty accumulator.
func NewGrouper() *Grouper {
	return &Grouper{groups: map[string]*int64{}, sums: arena.New[int64](256)}
}

// Add folds v into the group the query assigns the row to, preferring the
// allocation-free GroupAppend path when the query provides one.
func (g *Grouper) Add(q *Query, lo *Lineorder, d *Date, c *Customer, s *Supplier, p *Part, v int64) {
	g.kbuf = g.kbuf[:0]
	if q.GroupAppend != nil {
		g.kbuf = q.GroupAppend(g.kbuf, lo, d, c, s, p)
	} else if q.GroupBy != nil {
		g.kbuf = append(g.kbuf, q.GroupBy(lo, d, c, s, p)...)
	}
	if sum, ok := g.groups[string(g.kbuf)]; ok {
		*sum += v
		return
	}
	sum := g.sums.Alloc()
	*sum = v
	g.groups[string(g.kbuf)] = sum
}

// Len reports the number of distinct groups accumulated.
func (g *Grouper) Len() int { return len(g.groups) }

// Emit adds the accumulated sums into out.
func (g *Grouper) Emit(out Result) {
	for k, v := range g.groups {
		out[k] += *v
	}
}

// Reset clears the accumulator for reuse, keeping map and arena capacity.
func (g *Grouper) Reset() {
	clear(g.groups)
	g.sums.Reset()
	g.kbuf = g.kbuf[:0]
}
