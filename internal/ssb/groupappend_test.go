package ssb

import "testing"

// TestGroupAppendMatchesGroupBy pins the engines' allocation-free grouping
// fast path: for every query and every row that reaches aggregation,
// GroupAppend must produce exactly GroupBy's bytes — the fast path may never
// drift from the string the Reference oracle groups on.
func TestGroupAppendMatchesGroupBy(t *testing.T) {
	d := MustGenerate(0.01)
	for _, q := range Queries() {
		if q.GroupBy == nil {
			if q.GroupAppend != nil {
				t.Errorf("%s: GroupAppend without GroupBy", q.ID)
			}
			continue
		}
		if q.GroupAppend == nil {
			t.Errorf("%s: grouped query missing the GroupAppend fast path", q.ID)
			continue
		}
		checked := 0
		var buf []byte
		for i := range d.Lineorder {
			lo := &d.Lineorder[i]
			date := d.DateByKey(lo.OrderDate)
			var c *Customer
			var s *Supplier
			var p *Part
			if q.NeedsCust {
				c = d.CustomerByKey(lo.CustKey)
			}
			if q.NeedsSupp {
				s = d.SupplierByKey(lo.SuppKey)
			}
			if q.NeedsPart {
				p = d.PartByKey(lo.PartKey)
			}
			if date == nil || (q.NeedsCust && c == nil) || (q.NeedsSupp && s == nil) || (q.NeedsPart && p == nil) {
				continue
			}
			want := q.GroupBy(lo, date, c, s, p)
			buf = q.GroupAppend(buf[:0], lo, date, c, s, p)
			if string(buf) != want {
				t.Fatalf("%s row %d: GroupAppend = %q, GroupBy = %q", q.ID, i, buf, want)
			}
			checked++
			if checked >= 2000 {
				break
			}
		}
		if checked == 0 {
			t.Errorf("%s: no rows checked", q.ID)
		}
	}
}

// TestGrouperMatchesDirectAggregation pins the Grouper against the plain
// map-of-sums idiom the Reference executor uses.
func TestGrouperMatchesDirectAggregation(t *testing.T) {
	d := MustGenerate(0.01)
	for _, q := range Queries() {
		want := Reference(d, q)
		g := NewGrouper()
		for i := range d.Lineorder {
			lo := &d.Lineorder[i]
			if q.LOFilter != nil && !q.LOFilter(lo) {
				continue
			}
			date := d.DateByKey(lo.OrderDate)
			if q.DateFilter != nil && !q.DateFilter(date) {
				continue
			}
			var c *Customer
			if q.NeedsCust {
				c = d.CustomerByKey(lo.CustKey)
				if q.CustFilter != nil && !q.CustFilter(c) {
					continue
				}
			}
			var s *Supplier
			if q.NeedsSupp {
				s = d.SupplierByKey(lo.SuppKey)
				if q.SuppFilter != nil && !q.SuppFilter(s) {
					continue
				}
			}
			var p *Part
			if q.NeedsPart {
				p = d.PartByKey(lo.PartKey)
				if q.PartFilter != nil && !q.PartFilter(p) {
					continue
				}
			}
			g.Add(&q, lo, date, c, s, p, q.Aggregate(lo))
		}
		got := Result{}
		g.Emit(got)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", q.ID, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s group %q: %d, want %d", q.ID, k, got[k], v)
			}
		}
	}
}
