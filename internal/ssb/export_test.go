package ssb

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTableRowAndFieldCounts(t *testing.T) {
	d := MustGenerate(0.01)
	fieldCounts := map[string]int{
		"lineorder": 17,
		"customer":  8,
		"supplier":  7,
		"part":      9,
		"date":      16,
	}
	rowCounts := map[string]int{
		"lineorder": len(d.Lineorder),
		"customer":  len(d.Customer),
		"supplier":  len(d.Supplier),
		"part":      len(d.Part),
		"date":      len(d.Date),
	}
	for _, table := range TableNames() {
		var buf bytes.Buffer
		if err := WriteTable(&buf, d, table); err != nil {
			t.Fatalf("WriteTable(%s): %v", table, err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) != rowCounts[table] {
			t.Errorf("%s: %d rows, want %d", table, len(lines), rowCounts[table])
		}
		// dbgen format: trailing pipe, so fields = separators.
		fields := strings.Count(lines[0], "|")
		if fields != fieldCounts[table] {
			t.Errorf("%s: %d fields, want %d (row: %s)", table, fields, fieldCounts[table], lines[0])
		}
	}
}

func TestWriteTableUnknown(t *testing.T) {
	d := MustGenerate(0.01)
	if err := WriteTable(&bytes.Buffer{}, d, "orders"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestWriteTableDateGolden(t *testing.T) {
	d := MustGenerate(0.01)
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, "date"); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "19920101|January 1, 1992|") {
		t.Errorf("first date row = %q", first)
	}
}

func TestWriteTableDeterministic(t *testing.T) {
	d := MustGenerate(0.01)
	var a, b bytes.Buffer
	if err := WriteTable(&a, d, "lineorder"); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable(&b, d, "lineorder"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("export not deterministic")
	}
}
