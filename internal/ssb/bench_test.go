package ssb

import "testing"

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceQ21(b *testing.B) {
	d := MustGenerate(0.01)
	q, err := QueryByID("Q2.1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reference(d, q)
	}
}
