// Package ssb implements the Star Schema Benchmark (O'Neil et al., TPCTC
// 2009) used in the paper's Section 6: the star schema (one lineorder fact
// table and four dimension tables), a deterministic data generator with the
// benchmark's scale-factor rules, and the 13 queries in 4 query flights as
// executable specifications shared by both engines.
package ssb

import (
	"fmt"
	"sync"
)

// Lineorder is the fact table row. Monetary values are in cents; discount
// and tax are integer percentages, as in the SSB specification.
type Lineorder struct {
	OrderKey      uint64
	LineNumber    uint8
	CustKey       uint32
	PartKey       uint32
	SuppKey       uint32
	OrderDate     uint32 // yyyymmdd, foreign key into Date
	OrdPriority   uint8  // 0..4
	ShipPriority  uint8
	Quantity      uint8  // 1..50
	ExtendedPrice uint32 // cents
	OrdTotalPrice uint32
	Discount      uint8 // 0..10 (%)
	Revenue       uint32
	SupplyCost    uint32
	Tax           uint8 // 0..8 (%)
	CommitDate    uint32
	ShipMode      uint8 // 0..6
}

// TupleBytes is the aligned on-storage footprint of one lineorder tuple in
// the handcrafted engine: "we align all fields to 128 Byte, which is
// slightly larger than the size of a tuple (<10%)" (Section 6.2).
const TupleBytes = 128

// Customer dimension row.
type Customer struct {
	CustKey    uint32
	Name       string
	Address    string
	City       string // nation prefix + digit, e.g. "UNITED KI1"
	Nation     string
	Region     string
	Phone      string
	MktSegment string
}

// Supplier dimension row.
type Supplier struct {
	SuppKey uint32
	Name    string
	Address string
	City    string
	Nation  string
	Region  string
	Phone   string
}

// Part dimension row.
type Part struct {
	PartKey   uint32
	Name      string
	MFGR      string // "MFGR#1".."MFGR#5"
	Category  string // "MFGR#11".."MFGR#55"
	Brand1    string // category + 1..40, e.g. "MFGR#1221"
	Color     string
	Type      string
	Size      uint8 // 1..50
	Container string
}

// Date dimension row (one per calendar day, 7 years: 1992-01-01 to
// 1998-12-31 — 2557 days including the 1992 and 1996 leap days).
type Date struct {
	DateKey         uint32 // yyyymmdd
	Date            string
	DayOfWeek       string
	Month           string
	Year            uint16
	YearMonthNum    uint32 // yyyymm
	YearMonth       string // "Jan1994"
	DayNumInWeek    uint8  // 1..7
	DayNumInMonth   uint8
	DayNumInYear    uint16
	MonthNumInYear  uint8
	WeekNumInYear   uint8
	SellingSeason   string
	LastDayInWeekFl bool
	HolidayFl       bool
	WeekdayFl       bool
}

// Data is one generated SSB database.
type Data struct {
	SF        float64
	Lineorder []Lineorder
	Customer  []Customer
	Supplier  []Supplier
	Part      []Part
	Date      []Date

	// Key-indexed lookup maps (dimension keys are dense, but Date is keyed
	// by yyyymmdd; these maps are what a query engine would build once).
	dateByKey map[uint32]*Date
	// dateIdx is a dense yyyymmdd decoding of dateByKey: slot
	// (y-1992)*372 + (m-1)*31 + (day-1), -1 for days outside the calendar.
	// Scan loops hit DateByKey once per fact row, so the map lookup shows
	// up in profiles; the dense form is a bounds check and an array load.
	dateIdx []int32

	// memo caches query-execution artifacts that are pure functions of the
	// generated data (encoded fact tables, per-query join results). The
	// engines re-execute every query on every machine configuration; the
	// answers cannot differ, only the simulated traffic charged for them.
	memoMu sync.Mutex
	memo   map[string]any
}

// Memo returns the value cached under key, computing it with build on first
// use. Builds run under the data's lock, so concurrent callers of the same
// key compute it once and mutate nothing shared. build must be a pure
// function of the (immutable) data set, and callers must not modify the
// returned value.
func (d *Data) Memo(key string, build func() any) any {
	d.memoMu.Lock()
	defer d.memoMu.Unlock()
	if v, ok := d.memo[key]; ok {
		return v
	}
	if d.memo == nil {
		d.memo = make(map[string]any)
	}
	v := build()
	d.memo[key] = v
	return v
}

// DateByKey returns the date row for a yyyymmdd key.
func (d *Data) DateByKey(key uint32) *Date {
	if d.dateIdx != nil {
		y := key / 10000
		m := key / 100 % 100
		dd := key % 100
		if y < 1992 || y > 1998 || m < 1 || m > 12 || dd < 1 || dd > 31 {
			return nil
		}
		if ix := d.dateIdx[(y-1992)*372+(m-1)*31+(dd-1)]; ix >= 0 {
			return &d.Date[ix]
		}
		return nil
	}
	return d.dateByKey[key]
}

// CustomerByKey returns the customer with the given (1-based, dense) key.
func (d *Data) CustomerByKey(key uint32) *Customer {
	if key == 0 || int(key) > len(d.Customer) {
		return nil
	}
	return &d.Customer[key-1]
}

// SupplierByKey returns the supplier with the given dense key.
func (d *Data) SupplierByKey(key uint32) *Supplier {
	if key == 0 || int(key) > len(d.Supplier) {
		return nil
	}
	return &d.Supplier[key-1]
}

// PartByKey returns the part with the given dense key.
func (d *Data) PartByKey(key uint32) *Part {
	if key == 0 || int(key) > len(d.Part) {
		return nil
	}
	return &d.Part[key-1]
}

// FactBytes returns the handcrafted engine's storage footprint of the fact
// table (TupleBytes per row).
func (d *Data) FactBytes() int64 { return int64(len(d.Lineorder)) * TupleBytes }

func (d *Data) String() string {
	return fmt.Sprintf("ssb sf=%g: lineorder=%d customer=%d supplier=%d part=%d date=%d",
		d.SF, len(d.Lineorder), len(d.Customer), len(d.Supplier), len(d.Part), len(d.Date))
}
