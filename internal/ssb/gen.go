package ssb

import (
	"fmt"
	"strconv"
	"time"
)

// The 25 SSB nations, five per region, in the specification's grouping.
var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

// Regions in a fixed order so nation indices are deterministic.
var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations and nationRegion are flattened, index 0..24.
var nations []string
var nationRegion []string

func init() {
	for _, r := range regions {
		for _, n := range nationsByRegion[r] {
			nations = append(nations, n)
			nationRegion = append(nationRegion, r)
		}
	}
}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var colors = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon",
	"chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim"}
var containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
	"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var types = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var weekdays = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
var monthNames = []string{"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

// ShipModeName maps a Lineorder.ShipMode code to its string.
func ShipModeName(code uint8) string { return shipModes[int(code)%len(shipModes)] }

// splitmix64 is the deterministic generator used for every random choice:
// each (stream, index) pair yields the same value on every run and platform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a per-row deterministic source.
type rng struct{ state uint64 }

func newRNG(stream, row uint64) rng {
	return rng{state: splitmix64(stream*0x51cc2ad3fe11f5ab + row)}
}

func (r *rng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// Cardinalities per the SSB specification (scaled linearly below sf 1 so
// small test databases keep the schema's proportions).
func lineorderCount(sf float64) int { return int(6_000_000 * sf) }
func customerCount(sf float64) int  { return maxInt(int(30_000*sf), 100) }
func supplierCount(sf float64) int  { return maxInt(int(2_000*sf), 40) }

// partCount follows the spec's 200,000 * (1 + floor(log2(sf))) for sf >= 1.
func partCount(sf float64) int {
	if sf >= 1 {
		mult := 1
		for s := 2.0; s <= sf; s *= 2 {
			mult++
		}
		return 200_000 * mult
	}
	return maxInt(int(200_000*sf), 400)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a deterministic SSB database at the given scale factor.
// sf 1 produces 6 million lineorder rows; the paper uses sf 50 (Hyrise) and
// sf 100 (handcrafted, 600 million rows in ~70 GB).
func Generate(sf float64) (*Data, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("ssb: scale factor must be positive, got %g", sf)
	}
	d := &Data{SF: sf}
	d.Date = genDates()
	d.dateByKey = make(map[uint32]*Date, len(d.Date))
	d.dateIdx = make([]int32, 7*372)
	for i := range d.dateIdx {
		d.dateIdx[i] = -1
	}
	for i := range d.Date {
		k := d.Date[i].DateKey
		d.dateByKey[k] = &d.Date[i]
		y, m, dd := k/10000, k/100%100, k%100
		d.dateIdx[(y-1992)*372+(m-1)*31+(dd-1)] = int32(i)
	}
	d.Customer = genCustomers(customerCount(sf))
	d.Supplier = genSuppliers(supplierCount(sf))
	d.Part = genParts(partCount(sf))
	d.Lineorder = genLineorders(d, lineorderCount(sf))
	return d, nil
}

// MustGenerate panics on invalid scale factors.
func MustGenerate(sf float64) *Data {
	d, err := Generate(sf)
	if err != nil {
		panic(err)
	}
	return d
}

func genDates() []Date {
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1998, 12, 31, 0, 0, 0, 0, time.UTC)
	var out []Date
	for t := start; !t.After(end); t = t.AddDate(0, 0, 1) {
		y, m, day := t.Date()
		doy := t.YearDay()
		dow := int(t.Weekday()) // Sunday = 0
		// SSB numbers days 1..7 starting Sunday.
		season := "Winter"
		switch {
		case m >= 3 && m <= 5:
			season = "Spring"
		case m >= 6 && m <= 8:
			season = "Summer"
		case m >= 9 && m <= 11:
			season = "Fall"
		}
		if m == 12 {
			season = "Christmas"
		}
		key := uint32(y*10000 + int(m)*100 + day)
		out = append(out, Date{
			DateKey:         key,
			Date:            monthNames[m-1] + " " + strconv.Itoa(day) + ", " + strconv.Itoa(y),
			DayOfWeek:       weekdays[(dow+6)%7],
			Month:           monthNames[m-1],
			Year:            uint16(y),
			YearMonthNum:    uint32(y*100 + int(m)),
			YearMonth:       monthNames[m-1][:3] + strconv.Itoa(y),
			DayNumInWeek:    uint8(dow + 1),
			DayNumInMonth:   uint8(day),
			DayNumInYear:    uint16(doy),
			MonthNumInYear:  uint8(m),
			WeekNumInYear:   uint8((doy-1)/7 + 1),
			SellingSeason:   season,
			LastDayInWeekFl: dow == 6,
			HolidayFl:       (doy % 30) == 1,
			WeekdayFl:       dow >= 1 && dow <= 5,
		})
	}
	return out
}

// The generator's string domains are tiny (250 cities, 5 manufacturers, 25
// categories, 1000 brands, 6 types), so they are interned once — built with
// the same formatting the per-row code used, so the bytes are identical —
// and the per-row cost is an index instead of an allocation. This init runs
// after the one above (source order), which fills nations.
var (
	cityNames     [250]string  // nationIdx*10 + digit
	mfgrNames     [6]string    // "MFGR#1".."MFGR#5"
	categoryNames [6][6]string // "MFGR#11".."MFGR#55"
	brandNames    [6][6][41]string
	typesBrushed  []string
)

func init() {
	for nat := 0; nat < 25; nat++ {
		n := nations[nat]
		if len(n) > 9 {
			n = n[:9]
		}
		for len(n) < 9 {
			n += " "
		}
		for digit := 0; digit < 10; digit++ {
			cityNames[nat*10+digit] = fmt.Sprintf("%s%d", n, digit)
		}
	}
	for mfgr := 1; mfgr <= 5; mfgr++ {
		mfgrNames[mfgr] = fmt.Sprintf("MFGR#%d", mfgr)
		for cat := 1; cat <= 5; cat++ {
			categoryNames[mfgr][cat] = fmt.Sprintf("MFGR#%d%d", mfgr, cat)
			for brand := 1; brand <= 40; brand++ {
				brandNames[mfgr][cat][brand] = fmt.Sprintf("MFGR#%d%d%02d", mfgr, cat, brand)
			}
		}
	}
	typesBrushed = make([]string, len(types))
	for i, t := range types {
		typesBrushed[i] = t + " BRUSHED"
	}
}

// cityOf returns the SSB city string: the nation name truncated or padded
// to nine characters plus a digit 0-9 ("UNITED KI1").
func cityOf(nationIdx, digit int) string {
	return cityNames[nationIdx*10+digit]
}

// appendPadded appends v zero-padded to exactly width digits (v < 10^width),
// matching fmt's %0*d for non-negative values.
func appendPadded(dst []byte, v, width int) []byte {
	var b [20]byte
	for j := width - 1; j >= 0; j-- {
		b[j] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, b[:width]...)
}

// seqName renders prefix + %09d in one allocation ("Customer#000000001").
func seqName(prefix string, i int) string {
	if i < 0 || i > 999_999_999 {
		return fmt.Sprintf("%s%09d", prefix, i)
	}
	var b [32]byte
	buf := append(b[:0], prefix...)
	buf = appendPadded(buf, i, 9)
	return string(buf)
}

// addrOf renders "addr-%d" in one allocation.
func addrOf(v uint64) string {
	var b [32]byte
	buf := append(b[:0], "addr-"...)
	buf = strconv.AppendUint(buf, v, 10)
	return string(buf)
}

// phoneOf renders "%02d-%03d-%03d-%04d" in one allocation.
func phoneOf(a, b3, c, d4 int) string {
	var b [16]byte
	buf := appendPadded(b[:0], a, 2)
	buf = append(buf, '-')
	buf = appendPadded(buf, b3, 3)
	buf = append(buf, '-')
	buf = appendPadded(buf, c, 3)
	buf = append(buf, '-')
	buf = appendPadded(buf, d4, 4)
	return string(buf)
}

func genCustomers(n int) []Customer {
	out := make([]Customer, n)
	for i := range out {
		r := newRNG(1, uint64(i))
		nat := r.intn(25)
		out[i] = Customer{
			CustKey:    uint32(i + 1),
			Name:       seqName("Customer#", i+1),
			Address:    addrOf(r.next() % 1_000_000),
			City:       cityOf(nat, r.intn(10)),
			Nation:     nations[nat],
			Region:     nationRegion[nat],
			Phone:      phoneOf(10+nat, r.intn(1000), r.intn(1000), r.intn(10000)),
			MktSegment: mktSegments[r.intn(len(mktSegments))],
		}
	}
	return out
}

func genSuppliers(n int) []Supplier {
	out := make([]Supplier, n)
	for i := range out {
		r := newRNG(2, uint64(i))
		nat := r.intn(25)
		out[i] = Supplier{
			SuppKey: uint32(i + 1),
			Name:    seqName("Supplier#", i+1),
			Address: addrOf(r.next() % 1_000_000),
			City:    cityOf(nat, r.intn(10)),
			Nation:  nations[nat],
			Region:  nationRegion[nat],
			Phone:   phoneOf(10+nat, r.intn(1000), r.intn(1000), r.intn(10000)),
		}
	}
	return out
}

func genParts(n int) []Part {
	out := make([]Part, n)
	for i := range out {
		r := newRNG(3, uint64(i))
		mfgr := r.rangeInt(1, 5)
		cat := r.rangeInt(1, 5)
		brand := r.rangeInt(1, 40)
		out[i] = Part{
			PartKey:   uint32(i + 1),
			Name:      "part-" + strconv.Itoa(i+1),
			MFGR:      mfgrNames[mfgr],
			Category:  categoryNames[mfgr][cat],
			Brand1:    brandNames[mfgr][cat][brand],
			Color:     colors[r.intn(len(colors))],
			Type:      typesBrushed[r.intn(len(types))],
			Size:      uint8(r.rangeInt(1, 50)),
			Container: containers[r.intn(len(containers))],
		}
	}
	return out
}

func genLineorders(d *Data, n int) []Lineorder {
	out := make([]Lineorder, n)
	nDates := len(d.Date)
	for i := range out {
		r := newRNG(4, uint64(i))
		quantity := uint8(r.rangeInt(1, 50))
		extended := uint32(r.rangeInt(90_000, 10_494_950)) // cents, ~$900-$104,949
		discount := uint8(r.rangeInt(0, 10))
		revenue := uint32(uint64(extended) * uint64(100-discount) / 100)
		orderDateIdx := r.intn(nDates)
		commitIdx := orderDateIdx + r.rangeInt(30, 90)
		if commitIdx >= nDates {
			commitIdx = nDates - 1
		}
		out[i] = Lineorder{
			OrderKey:      uint64(i/4 + 1), // ~4 lines per order
			LineNumber:    uint8(i%4 + 1),
			CustKey:       uint32(r.intn(len(d.Customer)) + 1),
			PartKey:       uint32(r.intn(len(d.Part)) + 1),
			SuppKey:       uint32(r.intn(len(d.Supplier)) + 1),
			OrderDate:     d.Date[orderDateIdx].DateKey,
			OrdPriority:   uint8(r.intn(5)),
			ShipPriority:  0,
			Quantity:      quantity,
			ExtendedPrice: extended,
			OrdTotalPrice: extended * uint32(r.rangeInt(1, 7)),
			Discount:      discount,
			Revenue:       revenue,
			SupplyCost:    uint32(6 * int(extended) / 10),
			Tax:           uint8(r.rangeInt(0, 8)),
			CommitDate:    d.Date[commitIdx].DateKey,
			ShipMode:      uint8(r.intn(len(shipModes))),
		}
	}
	return out
}
