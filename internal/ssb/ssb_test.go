package ssb

import (
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0); err == nil {
		t.Error("Generate(0) succeeded")
	}
	if _, err := Generate(-1); err == nil {
		t.Error("Generate(-1) succeeded")
	}
}

func TestCardinalities(t *testing.T) {
	d := MustGenerate(0.01)
	if got := len(d.Lineorder); got != 60000 {
		t.Errorf("lineorder rows = %d, want 60000 at sf 0.01", got)
	}
	// 7 years 1992-1998 including leap days 1992 and 1996: 2557 days.
	// The SSB spec says 7 years; dbgen ships 2556 rows (it drops one leap
	// day); we keep the true calendar.
	if got := len(d.Date); got != 2557 {
		t.Errorf("date rows = %d, want 2557", got)
	}
	if len(d.Customer) == 0 || len(d.Supplier) == 0 || len(d.Part) == 0 {
		t.Error("empty dimension tables")
	}
	// sf >= 1 part scaling: 200k * (1 + floor(log2(sf))).
	if got := partCount(1); got != 200000 {
		t.Errorf("partCount(1) = %d, want 200000", got)
	}
	if got := partCount(4); got != 600000 {
		t.Errorf("partCount(4) = %d, want 600000", got)
	}
	if got := partCount(100); got != 1400000 {
		t.Errorf("partCount(100) = %d, want 1400000 (1+floor(log2(100))=7)", got)
	}
	// sf 100: 600M rows, ~70 GB at 128 B tuples ("600 million lineorder
	// entries in 70GB", Section 6.2).
	if got := lineorderCount(100); got != 600_000_000 {
		t.Errorf("lineorderCount(100) = %d, want 600M", got)
	}
	gb := float64(int64(lineorderCount(100))*TupleBytes) / 1e9
	if gb < 70 || gb > 80 {
		t.Errorf("sf100 fact bytes = %.1f GB, want ~76.8", gb)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(0.01)
	b := MustGenerate(0.01)
	for i := range a.Lineorder {
		if a.Lineorder[i] != b.Lineorder[i] {
			t.Fatalf("lineorder row %d differs between runs", i)
		}
	}
	for i := range a.Customer {
		if a.Customer[i] != b.Customer[i] {
			t.Fatalf("customer row %d differs between runs", i)
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	d := MustGenerate(0.01)
	for i := range d.Lineorder {
		lo := &d.Lineorder[i]
		if d.DateByKey(lo.OrderDate) == nil {
			t.Fatalf("row %d: order date %d not in date table", i, lo.OrderDate)
		}
		if d.CustomerByKey(lo.CustKey) == nil {
			t.Fatalf("row %d: custkey %d unresolved", i, lo.CustKey)
		}
		if d.SupplierByKey(lo.SuppKey) == nil {
			t.Fatalf("row %d: suppkey %d unresolved", i, lo.SuppKey)
		}
		if d.PartByKey(lo.PartKey) == nil {
			t.Fatalf("row %d: partkey %d unresolved", i, lo.PartKey)
		}
	}
}

func TestLineorderDomains(t *testing.T) {
	d := MustGenerate(0.01)
	for i := range d.Lineorder {
		lo := &d.Lineorder[i]
		if lo.Quantity < 1 || lo.Quantity > 50 {
			t.Fatalf("row %d: quantity %d out of [1,50]", i, lo.Quantity)
		}
		if lo.Discount > 10 {
			t.Fatalf("row %d: discount %d out of [0,10]", i, lo.Discount)
		}
		if lo.Tax > 8 {
			t.Fatalf("row %d: tax %d out of [0,8]", i, lo.Tax)
		}
		wantRev := uint32(uint64(lo.ExtendedPrice) * uint64(100-lo.Discount) / 100)
		if lo.Revenue != wantRev {
			t.Fatalf("row %d: revenue %d != extendedprice*(100-discount)/100 = %d", i, lo.Revenue, wantRev)
		}
		if lo.CommitDate < lo.OrderDate {
			t.Fatalf("row %d: commit date %d before order date %d", i, lo.CommitDate, lo.OrderDate)
		}
	}
}

func TestDimensionDomains(t *testing.T) {
	d := MustGenerate(0.02)
	regionsSeen := map[string]bool{}
	for i := range d.Customer {
		c := &d.Customer[i]
		regionsSeen[c.Region] = true
		if len(c.City) != 10 {
			t.Fatalf("customer city %q not 10 chars", c.City)
		}
		// City prefix must derive from the nation.
		prefix := c.Nation
		if len(prefix) > 9 {
			prefix = prefix[:9]
		}
		if c.City[:len(prefix)] != prefix {
			t.Fatalf("city %q does not match nation %q", c.City, c.Nation)
		}
	}
	if len(regionsSeen) != 5 {
		t.Errorf("customer regions seen = %d, want 5", len(regionsSeen))
	}
	for i := range d.Part {
		p := &d.Part[i]
		if len(p.Category) != 7 { // "MFGR#12"
			t.Fatalf("part category %q malformed", p.Category)
		}
		if p.Brand1[:7] != p.Category {
			t.Fatalf("brand1 %q does not extend category %q", p.Brand1, p.Category)
		}
		if p.Category[:6] != p.MFGR {
			t.Fatalf("category %q does not extend mfgr %q", p.Category, p.MFGR)
		}
	}
}

func TestDateDimension(t *testing.T) {
	d := MustGenerate(0.01)
	first := d.Date[0]
	if first.DateKey != 19920101 || first.Year != 1992 {
		t.Errorf("first date = %+v", first)
	}
	last := d.Date[len(d.Date)-1]
	if last.DateKey != 19981231 {
		t.Errorf("last date key = %d, want 19981231", last.DateKey)
	}
	// YearMonth format used by Q3.4.
	dec97 := 0
	for i := range d.Date {
		if d.Date[i].YearMonth == "Dec1997" {
			dec97++
		}
	}
	if dec97 != 31 {
		t.Errorf("Dec1997 days = %d, want 31", dec97)
	}
	// WeekNumInYear 6 exists in 1994 (Q1.3's filter).
	wk6 := 0
	for i := range d.Date {
		if d.Date[i].Year == 1994 && d.Date[i].WeekNumInYear == 6 {
			wk6++
		}
	}
	if wk6 != 7 {
		t.Errorf("week 6 of 1994 has %d days, want 7", wk6)
	}
}

func TestQueriesComplete(t *testing.T) {
	qs := Queries()
	if len(qs) != 13 {
		t.Fatalf("Queries() returned %d, want 13", len(qs))
	}
	flights := map[int]int{}
	for _, q := range qs {
		flights[q.Flight]++
		if q.Aggregate == nil {
			t.Errorf("%s has no aggregate", q.ID)
		}
		if q.SQL == "" {
			t.Errorf("%s has no SQL text", q.ID)
		}
	}
	want := map[int]int{1: 3, 2: 3, 3: 4, 4: 3}
	for f, n := range want {
		if flights[f] != n {
			t.Errorf("flight %d has %d queries, want %d", f, flights[f], n)
		}
	}
	if _, err := QueryByID("Q2.1"); err != nil {
		t.Errorf("QueryByID(Q2.1): %v", err)
	}
	if _, err := QueryByID("Q9.9"); err == nil {
		t.Error("QueryByID(Q9.9) succeeded")
	}
}

func TestReferenceResultsNonTrivial(t *testing.T) {
	d := MustGenerate(0.2)
	for _, q := range Queries() {
		res := Reference(d, q)
		if q.ID == "Q3.4" {
			// Q3.4 drills down to two cities in one month: at small scale
			// factors it legitimately matches nothing. Just require that it
			// executes; its value is checked by the engine-agreement tests.
			continue
		}
		if len(res) == 0 {
			t.Errorf("%s produced no rows at sf 0.2", q.ID)
			continue
		}
		// Scalar flights aggregate under the "" key.
		if q.Flight == 1 {
			if len(res) != 1 {
				t.Errorf("%s produced %d groups, want 1", q.ID, len(res))
			}
			if res[""] <= 0 {
				t.Errorf("%s revenue = %d, want positive", q.ID, res[""])
			}
		} else if len(res) < 2 {
			t.Errorf("%s produced %d groups, want several", q.ID, len(res))
		}
	}
}

func TestMeasureSelectivities(t *testing.T) {
	d := MustGenerate(0.05)
	q, _ := QueryByID("Q2.1")
	sel := Measure(d, q)
	// p_category = MFGR#12 is 1 of 25 categories; s_region = AMERICA is 1
	// of 5 regions.
	if sel.Part < 0.02 || sel.Part > 0.06 {
		t.Errorf("part selectivity = %.3f, want ~0.04", sel.Part)
	}
	if sel.Supp < 0.12 || sel.Supp > 0.28 {
		t.Errorf("supplier selectivity = %.3f, want ~0.2", sel.Supp)
	}
	if sel.Date != 1 || sel.Cust != 1 {
		t.Errorf("unfiltered dims: date %.2f cust %.2f, want 1", sel.Date, sel.Cust)
	}
}

func TestResultEqual(t *testing.T) {
	a := Result{"x": 1, "y": 2}
	b := Result{"x": 1, "y": 2}
	c := Result{"x": 1, "y": 3}
	d := Result{"x": 1}
	if !a.Equal(b) {
		t.Error("equal results reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal results reported equal")
	}
	if a.String() == "" {
		t.Error("String() empty")
	}
}

// TestRowsOrdering: flight 3's ORDER BY d_year asc, revenue desc is applied;
// the other flights order by group key (which embeds their ORDER BY columns
// in position).
func TestRowsOrdering(t *testing.T) {
	d := MustGenerate(0.05)
	q31, _ := QueryByID("Q3.1")
	rows := Reference(d, q31).Rows(q31)
	if len(rows) < 10 {
		t.Fatalf("too few rows (%d) to check ordering", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		ya, yb := yearOfKey(rows[i-1].Key), yearOfKey(rows[i].Key)
		if ya > yb {
			t.Fatalf("year not ascending at %d: %s before %s", i, rows[i-1].Key, rows[i].Key)
		}
		if ya == yb && rows[i-1].Value < rows[i].Value {
			t.Fatalf("revenue not descending within year at %d: %d before %d", i, rows[i-1].Value, rows[i].Value)
		}
	}
	// Default ordering: Q2.1 sorts by key (year, brand).
	q21, _ := QueryByID("Q2.1")
	rows21 := Reference(d, q21).Rows(q21)
	for i := 1; i < len(rows21); i++ {
		if rows21[i-1].Key > rows21[i].Key {
			t.Fatalf("Q2.1 keys not ascending at %d", i)
		}
	}
}
