package pmemolap

import (
	"bytes"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way README's quickstart
// does: build a machine, measure a point, take advice, run a query.
func TestFacadeEndToEnd(t *testing.T) {
	b, err := NewBench(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gbs, err := b.Measure(Point{
		Class: PMEM, Dir: Read, Pattern: SeqIndividual,
		AccessSize: 4096, Threads: 18, Policy: PinCores,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gbs < 35 || gbs > 45 {
		t.Errorf("facade peak read = %.1f GB/s, want ~40", gbs)
	}

	if got := len(BestPractices()); got != 7 {
		t.Errorf("BestPractices() returned %d, want 7", got)
	}
	a := Advise(WorkloadDesc{FullControl: true})
	if a.ThreadsPerSocket == 0 || len(a.Notes) == 0 {
		t.Errorf("empty advice: %+v", a)
	}

	data, err := GenerateSSB(0.01)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAwareEngine(m, data, AwareOptions{Threads: 8, Sockets: 1, TargetSF: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := SSBQueries()[0]
	run, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if run.Seconds <= 0 {
		t.Error("query took no time")
	}

	m2, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	neng, err := NewNaiveEngine(m2, data, NaiveOptions{TargetSF: 1})
	if err != nil {
		t.Fatal(err)
	}
	nrun, err := neng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !nrun.Result.Equal(run.Result) {
		t.Error("engines disagree through the facade")
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	var buf bytes.Buffer
	// Tiny SF; Quick is not exposed through the facade, so this is the full
	// axis set — still seconds of virtual-time solving.
	if err := RunAllExperiments(&buf, 0.01); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
