// Command pmemchaos runs a seeded chaos plan against a live pmemd fleet and
// asserts, from the outside, that the resilience layer actually holds: while
// faults fly, the fleet may slow down and may shed bounded load, but it must
// never return wrong bytes — and once the plan is disarmed it must recover
// on its own, without a restart.
//
// Usage:
//
//	pmemchaos -target http://localhost:8070 -plan plan.json
//	          [-workers http://h1:8080,http://h2:8080] [-spec spec.json]
//	          [-sf 0.02] [-quick] [-concurrency 8] [-deadline 10s]
//	          [-error-bound 0.5] [-recovery-timeout 30s]
//
// The harness replays the same deterministic traffic pmemload generates
// (internal/queueing arrival spec; identical arrivals fire byte-identical
// bodies) in four phases:
//
//  1. baseline — no chaos; every request must succeed, and its bytes become
//     the pinned reference for that request body.
//  2. chaos — POST the plan to the target's /v1/chaos (and to each -workers
//     URL, so sst-corrupt events reach the disk tier), then replay passes
//     until the plan's horizon elapses. Errors are tolerated up to
//     -error-bound; a 200 whose bytes differ from the baseline reference is
//     a divergence and always a violation.
//  3. disarm — DELETE /v1/chaos everywhere, capturing each controller's
//     injection counts for the report.
//  4. recovery — replay passes until one is completely clean (zero errors,
//     zero divergences) and, when the target exposes /v1/workers, every
//     breaker has closed again. Exceeding -recovery-timeout is a violation.
//
// The report (JSON on stdout) carries per-phase counts and every violated
// invariant; any violation makes pmemchaos exit 1. Setup failures (bad
// plan, unreachable target, failed baseline) exit 2.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/queueing"
	"repro/internal/server"
)

// kindExperiment mirrors pmemload's arrival-kind → experiment mapping so
// both tools shape identical traffic from the same spec.
var kindExperiment = map[string]string{
	queueing.KindScanSmall: "fig04",
	queueing.KindScanLarge: "fig05",
	queueing.KindProbe:     "fig12",
	queueing.KindIngest:    "fig09",
}

// defaultSpec is a small two-client mix — enough duplicate arrivals to
// exercise every cache tier in a few seconds per pass.
const defaultSpec = `{
	"seed": 7,
	"horizon": 4,
	"clients": [
		{"name": "olap", "rate_qps": 3, "queries": [{"kind": "scan-s"}, {"kind": "probe"}]},
		{"name": "etl", "rate_qps": 1.5, "queries": [{"kind": "ingest"}, {"kind": "scan-l"}]}
	]
}`

// PhaseReport summarizes one replay phase (baseline, chaos, recovery).
type PhaseReport struct {
	Name        string  `json:"name"`
	Passes      int     `json:"passes"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Divergences int     `json:"divergences"`
	ErrorRate   float64 `json:"error_rate"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is pmemchaos's JSON output.
type Report struct {
	Target          string                  `json:"target"`
	Plan            *chaos.Plan             `json:"plan"`
	HorizonSeconds  float64                 `json:"horizon_seconds"`
	Phases          []PhaseReport           `json:"phases"`
	Injections      map[string]chaos.Status `json:"injections,omitempty"` // per armed endpoint, at disarm
	RecoverySeconds float64                 `json:"recovery_seconds,omitempty"`
	Violations      []string                `json:"violations"`
}

type harness struct {
	client    *http.Client
	target    string
	deadline  time.Duration
	shots     [][]byte // request bodies, arrival order
	mu        sync.Mutex
	reference map[string]string // body → baseline sha256 of the response bytes
}

func main() {
	target := flag.String("target", "", "base URL of the pmemfleet router (or a single pmemd) under test (required)")
	planPath := flag.String("plan", "", "chaos plan JSON file (required)")
	workersFlag := flag.String("workers", "", "comma-separated worker base URLs whose /v1/chaos should also arm the plan (reaches sst-corrupt events)")
	specPath := flag.String("spec", "", "arrival spec JSON file (internal/queueing format); empty = built-in mix")
	sf := flag.Float64("sf", 0.02, "scale factor spelled into every request")
	quick := flag.Bool("quick", true, "request quick (trimmed-axis) experiment runs")
	concurrency := flag.Int("concurrency", 8, "in-flight request cap")
	deadline := flag.Duration("deadline", 10*time.Second, "per-request X-Pmemd-Deadline during chaos and recovery passes; 0 = none")
	errorBound := flag.Float64("error-bound", 0.5, "maximum tolerated error rate across the chaos phase")
	passInterval := flag.Duration("pass-interval", 100*time.Millisecond, "pause between chaos replay passes, so the error rate samples the horizon roughly uniformly instead of over-weighting fast-failing outage windows")
	recoveryTimeout := flag.Duration("recovery-timeout", 30*time.Second, "how long after disarm the fleet has to serve one fully clean pass")
	flag.Parse()

	if *target == "" || *planPath == "" {
		fmt.Fprintln(os.Stderr, "pmemchaos: -target and -plan are required")
		os.Exit(2)
	}
	planRaw, err := os.ReadFile(*planPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
		os.Exit(2)
	}
	plan, err := chaos.Parse(planRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
		os.Exit(2)
	}
	canon, err := plan.Canonical()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
		os.Exit(2)
	}

	specJSON := []byte(defaultSpec)
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmemchaos:", err)
			os.Exit(2)
		}
		specJSON = b
	}
	spec, err := queueing.ParseSpec(specJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
		os.Exit(2)
	}
	shots, err := planShots(queueing.Generate(spec), *sf, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
		os.Exit(2)
	}

	armEndpoints := []string{*target}
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			armEndpoints = append(armEndpoints, w)
		}
	}

	h := &harness{
		client:    &http.Client{Timeout: 2 * time.Minute},
		target:    *target,
		deadline:  *deadline,
		shots:     shots,
		reference: map[string]string{},
	}
	report := Report{
		Target:         *target,
		Plan:           plan,
		HorizonSeconds: plan.Horizon(),
		Injections:     map[string]chaos.Status{},
		Violations:     []string{},
	}
	violate := func(format string, args ...any) {
		report.Violations = append(report.Violations, fmt.Sprintf(format, args...))
	}

	// Phase 1: baseline. The fleet must be clean before we break it — every
	// response here becomes the byte-level reference the chaos and recovery
	// phases are judged against.
	base := h.runPhase("baseline", 1, 0, *concurrency, 0)
	report.Phases = append(report.Phases, base)
	if base.Errors > 0 || base.Divergences > 0 {
		fmt.Fprintf(os.Stderr, "pmemchaos: baseline not clean (%d errors, %d divergences); fix the fleet before injecting faults\n",
			base.Errors, base.Divergences)
		emit(report)
		os.Exit(2)
	}

	// Phase 2: arm everywhere, then replay under fire until the horizon.
	for _, ep := range armEndpoints {
		if err := h.armPlan(ep, canon); err != nil {
			fmt.Fprintf(os.Stderr, "pmemchaos: arm %s: %v\n", ep, err)
			emit(report)
			os.Exit(2)
		}
	}
	armedAt := time.Now()
	fmt.Fprintf(os.Stderr, "pmemchaos: plan armed at %d endpoint(s), horizon %.1fs\n",
		len(armEndpoints), plan.Horizon())
	ch := h.runPhase("chaos", 0, plan.Horizon()-time.Since(armedAt).Seconds(), *concurrency, *passInterval)
	report.Phases = append(report.Phases, ch)
	if ch.Divergences > 0 {
		violate("chaos phase returned wrong bytes: %d divergent 200s (corruption must surface as an error, never as a result)", ch.Divergences)
	}
	if ch.ErrorRate > *errorBound {
		violate("chaos phase error rate %.3f exceeds bound %.3f", ch.ErrorRate, *errorBound)
	}

	// Phase 3: capture injection counts, then disarm everywhere.
	for _, ep := range armEndpoints {
		if st, err := h.chaosStatus(ep); err == nil {
			report.Injections[ep] = st
		}
		if err := h.disarm(ep); err != nil {
			violate("disarm %s failed: %v", ep, err)
		}
	}

	// Phase 4: recovery. The fleet must heal itself — breakers re-close via
	// half-open probes, corrupted cache records fall through to recompute —
	// within the budget, with no operator action.
	rec, recovered := h.runRecovery(*concurrency, *recoveryTimeout)
	report.Phases = append(report.Phases, rec)
	report.RecoverySeconds = rec.WallSeconds
	if !recovered {
		violate("fleet did not serve a fully clean pass within %s of disarm (%d errors, %d divergences in last attempt window)",
			*recoveryTimeout, rec.Errors, rec.Divergences)
	}
	if recovered {
		if err := h.awaitWorkersHealthy(*recoveryTimeout); err != nil {
			violate("worker breakers did not all close after disarm: %v", err)
		}
	}

	emit(report)
	if len(report.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "pmemchaos: %d invariant violation(s)\n", len(report.Violations))
		for _, v := range report.Violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pmemchaos: all invariants held")
}

// runPhase replays the shot schedule: `passes` fixed passes when passes > 0,
// otherwise repeatedly until `horizon` seconds have elapsed (at least one
// pass either way).
func (h *harness) runPhase(name string, passes int, horizon float64, concurrency int, interval time.Duration) PhaseReport {
	pr := PhaseReport{Name: name}
	start := time.Now()
	for pass := 1; ; pass++ {
		req, errs, div := h.firePass(concurrency, name != "baseline")
		pr.Passes++
		pr.Requests += req
		pr.Errors += errs
		pr.Divergences += div
		if passes > 0 && pass >= passes {
			break
		}
		if passes <= 0 && time.Since(start).Seconds() >= horizon {
			break
		}
		time.Sleep(interval)
	}
	pr.WallSeconds = time.Since(start).Seconds()
	if pr.Requests > 0 {
		pr.ErrorRate = float64(pr.Errors) / float64(pr.Requests)
	}
	return pr
}

// runRecovery replays passes until one is fully clean or the budget runs
// out. Its report aggregates every attempt; recovered reports success.
func (h *harness) runRecovery(concurrency int, budget time.Duration) (PhaseReport, bool) {
	pr := PhaseReport{Name: "recovery"}
	start := time.Now()
	recovered := false
	for {
		req, errs, div := h.firePass(concurrency, true)
		pr.Passes++
		pr.Requests += req
		pr.Errors += errs
		pr.Divergences += div
		if errs == 0 && div == 0 {
			recovered = true
			break
		}
		if time.Since(start) >= budget {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	pr.WallSeconds = time.Since(start).Seconds()
	if pr.Requests > 0 {
		pr.ErrorRate = float64(pr.Errors) / float64(pr.Requests)
	}
	return pr, recovered
}

// firePass fires every shot once and returns (requests, errors,
// divergences). A divergence is a 200 whose bytes disagree with the
// baseline reference for that body — or with the response's own
// X-Pmemd-Content-SHA256. withDeadline propagates h.deadline.
func (h *harness) firePass(concurrency int, withDeadline bool) (int, int, int) {
	if concurrency < 1 {
		concurrency = 1
	}
	var errs, div atomic.Int64
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for _, body := range h.shots {
		sem <- struct{}{}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			switch h.fire(body, withDeadline) {
			case outcomeError:
				errs.Add(1)
			case outcomeDivergence:
				div.Add(1)
			}
		}(body)
	}
	wg.Wait()
	return len(h.shots), int(errs.Load()), int(div.Load())
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeDivergence
)

func (h *harness) fire(body []byte, withDeadline bool) outcome {
	req, err := http.NewRequest(http.MethodPost, h.target+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return outcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	if withDeadline && h.deadline > 0 {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(h.deadline.Milliseconds(), 10))
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return outcomeError
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return outcomeError
	}
	sum := sha256.Sum256(raw)
	got := hex.EncodeToString(sum[:])
	if want := resp.Header.Get(server.ContentSHAHeader); want != "" && want != got {
		return outcomeDivergence
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if ref, ok := h.reference[string(body)]; !ok {
		h.reference[string(body)] = got
	} else if ref != got {
		return outcomeDivergence
	}
	return outcomeOK
}

func (h *harness) armPlan(endpoint string, canon []byte) error {
	resp, err := h.client.Post(endpoint+"/v1/chaos", "application/json", bytes.NewReader(canon))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s (is the process running with -chaos?)", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return nil
}

func (h *harness) chaosStatus(endpoint string) (chaos.Status, error) {
	var st chaos.Status
	resp, err := h.client.Get(endpoint + "/v1/chaos")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (h *harness) disarm(endpoint string) error {
	req, err := http.NewRequest(http.MethodDelete, endpoint+"/v1/chaos", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// awaitWorkersHealthy polls the target's /v1/workers until every breaker is
// closed. A target that does not expose the endpoint (a bare pmemd) passes
// trivially.
func (h *harness) awaitWorkersHealthy(budget time.Duration) error {
	type workerStatus struct {
		Name    string `json:"name"`
		Healthy bool   `json:"healthy"`
		Breaker string `json:"breaker"`
	}
	deadline := time.Now().Add(budget)
	var lastOpen []string
	for {
		resp, err := h.client.Get(h.target + "/v1/workers")
		if err == nil && resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			return nil
		}
		if err == nil {
			var ws []workerStatus
			derr := json.NewDecoder(resp.Body).Decode(&ws)
			resp.Body.Close()
			if derr == nil {
				lastOpen = lastOpen[:0]
				for _, w := range ws {
					if !w.Healthy {
						lastOpen = append(lastOpen, w.Name+"="+w.Breaker)
					}
				}
				if len(lastOpen) == 0 {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("still not closed: %s", strings.Join(lastOpen, ", "))
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// planShots renders each arrival into its request body once; identical
// arrivals share identical bodies, so the byte-reference map covers every
// request the replay will ever make.
func planShots(arrivals []queueing.Arrival, sf float64, quick bool) ([][]byte, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("spec generates no arrivals")
	}
	shots := make([][]byte, len(arrivals))
	for i, a := range arrivals {
		id, ok := kindExperiment[a.Kind]
		if !ok {
			return nil, fmt.Errorf("no experiment mapping for query kind %q", a.Kind)
		}
		body, err := json.Marshal(map[string]any{"id": id, "sf": sf, "quick": quick})
		if err != nil {
			return nil, err
		}
		shots[i] = body
	}
	return shots, nil
}

func emit(r Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "pmemchaos:", err)
	}
}
