// Command pmemdoctor explains a run: it ingests the artifacts a run leaves
// behind — the metrics snapshot (-metrics-json output of cmd/experiments or
// pmembench), optionally the Perfetto trace — walks the doctor's staged
// heuristic pipeline over the known limiting mechanisms, and prints a ranked
// verdict with named evidence. In bench-diff mode it instead compares two
// BENCH_sim.json reports and attributes any wall-clock regression to the
// counter family that shifted.
//
// Examples:
//
//	pmemdoctor -metrics run.json                          # diagnose a run
//	pmemdoctor -metrics run.json -trace run.trace.json    # + timeline evidence
//	pmemdoctor -metrics run.json -json                    # machine-readable
//	pmemdoctor -bench-baseline BENCH_sim.json -bench-report fresh.json
//	pmemdoctor -metrics run.json -assert-top channel-striping -assert-confidence 0.8
//
// The diagnosis is deterministic: the same artifacts produce byte-identical
// output (text or JSON) on any host. Exit status is 0 for a clean verdict, 1
// when a bench diff finds a regression or an -assert-* check fails, and 2
// for usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/doctor"
	"repro/internal/metrics"
)

func main() {
	metricsPath := flag.String("metrics", "", "run mode: metrics snapshot JSON (the -metrics-json output of cmd/experiments or pmembench)")
	tracePath := flag.String("trace", "", "run mode: the run's Chrome trace-event JSON, adds timeline evidence (optional)")
	benchBaseline := flag.String("bench-baseline", "", "bench-diff mode: the committed baseline BENCH_sim.json")
	benchReport := flag.String("bench-report", "", "bench-diff mode: the fresh BENCH_sim.json to triage against the baseline")
	tolerance := flag.Float64("tolerance", 0.20, "bench-diff: allowed wall-clock regression vs the calibration-scaled baseline (0.20 = +20%)")
	asJSON := flag.Bool("json", false, "emit the diagnosis document as JSON instead of the text report")
	outPath := flag.String("o", "-", "write the diagnosis to this file ('-' = stdout)")
	assertTop := flag.String("assert-top", "", "exit 1 unless the top verdict names this mechanism (CI guard)")
	assertConf := flag.Float64("assert-confidence", 0, "exit 1 unless the top verdict's confidence is at least this (CI guard)")
	flag.Parse()

	runMode := *metricsPath != ""
	benchMode := *benchBaseline != "" || *benchReport != ""
	if runMode == benchMode {
		fatal(fmt.Errorf("pick one mode: -metrics FILE (run) or -bench-baseline FILE -bench-report FILE (bench diff)"))
	}

	var d *doctor.Diagnosis
	if runMode {
		d = diagnoseRun(*metricsPath, *tracePath)
	} else {
		if *benchBaseline == "" || *benchReport == "" {
			fatal(fmt.Errorf("bench-diff mode needs both -bench-baseline and -bench-report"))
		}
		d = diagnoseBenchDiff(*benchBaseline, *benchReport, *tolerance)
	}

	w := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *asJSON {
		w.Write(d.JSON())
	} else {
		d.Fprint(w)
	}

	code := 0
	if d.Mode == doctor.ModeBenchDiff && d.Top().Mechanism != doctor.MechNoRegression {
		fmt.Fprintf(os.Stderr, "pmemdoctor: bench regression: %s\n", d.Top().Explanation)
		code = 1
	}
	if *assertTop != "" && d.Top().Mechanism != *assertTop {
		fmt.Fprintf(os.Stderr, "pmemdoctor: assertion failed: top verdict is %s, want %s\n",
			d.Top().Mechanism, *assertTop)
		code = 1
	}
	if *assertConf > 0 && d.Top().Confidence < *assertConf {
		fmt.Fprintf(os.Stderr, "pmemdoctor: assertion failed: top confidence %.4f < %.4f\n",
			d.Top().Confidence, *assertConf)
		code = 1
	}
	os.Exit(code)
}

// diagnoseRun loads the snapshot (and optional trace) and runs the pipeline.
func diagnoseRun(metricsPath, tracePath string) *doctor.Diagnosis {
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("metrics snapshot %s: %w", metricsPath, err))
	}
	var ts *doctor.TraceSummary
	if tracePath != "" {
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			fatal(err)
		}
		ts, err = doctor.SummarizeTrace(raw)
		if err != nil {
			fatal(fmt.Errorf("trace %s: %w", tracePath, err))
		}
	}
	return doctor.Diagnose(snap, ts)
}

// diagnoseBenchDiff loads the two reports and triages the regression.
func diagnoseBenchDiff(basePath, curPath string, tolerance float64) *doctor.Diagnosis {
	base, err := doctor.ReadBenchReport(basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := doctor.ReadBenchReport(curPath)
	if err != nil {
		fatal(err)
	}
	return doctor.DiagnoseBenchDiff(base, cur, tolerance)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmemdoctor:", err)
	os.Exit(2)
}
