// Command pmemd serves the calibrated machine simulation as a long-lived
// HTTP daemon — the paper's bandwidth model as a queryable performance
// oracle instead of a batch CLI.
//
// Usage:
//
//	pmemd [-addr :8080] [-workers 0] [-queue 64] [-cache-bytes 67108864]
//	      [-cache-dir DIR] [-cache-memtable-bytes 4194304]
//	      [-job-timeout 2m] [-drain-timeout 30s] [-max-sf 1]
//	      [-debug-addr localhost:6060] [-log-json]
//
// API:
//
//	POST /v1/run            submit an experiment (optionally with an ad-hoc
//	                        machine model); waits for the result unless
//	                        "async": true. "trace": true records the run's
//	                        simulated-time timeline
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/jobs/{id}/trace  the job's timeline as Chrome trace-event JSON
//	                        (open in Perfetto / chrome://tracing)
//	GET  /v1/experiments    the experiment catalog
//	GET  /metrics           Prometheus text exposition (server_* counters,
//	                        latency histograms, pmemd_build_info, plus the
//	                        cumulative sim_* hardware counters)
//	GET  /version           build metadata as JSON
//	GET  /healthz, /readyz  liveness / readiness
//
// Every response carries an X-Request-ID (echoed from the request when the
// client supplied one) and each request is logged as one structured line.
// -debug-addr exposes net/http/pprof on a separate listener, keeping the
// profiling surface off the serving port. Identical requests are answered
// from the content-addressed result cache; concurrent identical submissions
// coalesce onto one simulation. With -cache-dir a persistent SSTable tier
// sits under the in-memory LRU: results are written through to disk and
// survive restarts (X-Pmemd-Cache: disk — no recompute). SIGTERM or SIGINT
// drains in-flight jobs (bounded by -drain-timeout), flushes the disk
// tier's memtable, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation pool width; 0 = GOMAXPROCS")
	queue := flag.Int("queue", 64, "admitted jobs that may wait beyond the pool width before 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job simulation timeout (queue wait included)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	maxSF := flag.Float64("max-sf", 1, "largest scale factor a request may ask for; negative = unbounded")
	retryAttempts := flag.Int("retry-attempts", 2, "retries for jobs failing with a transient error (bounded exponential backoff)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "initial transient-error retry backoff (doubles per retry, with deterministic jitter)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
	logJSON := flag.Bool("log-json", false, "emit the structured log as JSON instead of logfmt-style text")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent SSTable result tier; empty = memory-only cache")
	cacheMemtable := flag.Int64("cache-memtable-bytes", 4<<20, "disk tier memtable flush threshold")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	s, err := server.New(server.Options{
		Workers:                *workers,
		QueueDepth:             *queue,
		CacheBytes:             *cacheBytes,
		JobTimeout:             *jobTimeout,
		MaxSF:                  *maxSF,
		Logger:                 logger,
		RetryAttempts:          *retryAttempts,
		RetryBackoff:           *retryBackoff,
		DiskCacheDir:           *cacheDir,
		DiskCacheMemtableBytes: *cacheMemtable,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemd:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	bi := server.ReadBuildInfo()
	logger.Info("serving",
		"addr", *addr, "version", bi.Version, "go", bi.GoVersion, "revision", bi.Revision,
		"workers", s.Pool().Width(), "queue", *queue, "cache_bytes", *cacheBytes)

	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("pprof listener failed", "error", err.Error())
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pmemd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop admitting, let in-flight simulations (and the handlers
	// waiting on them) finish, then close the listener.
	logger.Info("draining", "timeout", drainTimeout.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(shCtx); err != nil {
		logger.Warn("drain incomplete", "error", err.Error())
	}
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("shutdown error", "error", err.Error())
	}
	s.Close()
	logger.Info("exited cleanly")
}
