// Command pmemd serves the calibrated machine simulation as a long-lived
// HTTP daemon — the paper's bandwidth model as a queryable performance
// oracle instead of a batch CLI.
//
// Usage:
//
//	pmemd [-addr :8080] [-workers 0] [-queue 64] [-cache-bytes 67108864]
//	      [-job-timeout 2m] [-drain-timeout 30s] [-max-sf 1]
//
// API:
//
//	POST /v1/run            submit an experiment (optionally with an ad-hoc
//	                        machine model); waits for the result unless
//	                        "async": true
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/experiments    the experiment catalog
//	GET  /metrics           Prometheus text exposition (server_* counters
//	                        plus the cumulative sim_* hardware counters)
//	GET  /healthz, /readyz  liveness / readiness
//
// Identical requests are answered from the content-addressed result cache;
// concurrent identical submissions coalesce onto one simulation. SIGTERM or
// SIGINT drains in-flight jobs (bounded by -drain-timeout) before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation pool width; 0 = GOMAXPROCS")
	queue := flag.Int("queue", 64, "admitted jobs that may wait beyond the pool width before 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job simulation timeout (queue wait included)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	maxSF := flag.Float64("max-sf", 1, "largest scale factor a request may ask for; negative = unbounded")
	flag.Parse()

	s := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheBytes,
		JobTimeout: *jobTimeout,
		MaxSF:      *maxSF,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pmemd: serving on %s (workers=%d queue=%d cache=%dB)",
		*addr, s.Pool().Width(), *queue, *cacheBytes)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pmemd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop admitting, let in-flight simulations (and the handlers
	// waiting on them) finish, then close the listener.
	log.Printf("pmemd: draining (up to %s)", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(shCtx); err != nil {
		log.Printf("pmemd: drain incomplete: %v", err)
	}
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("pmemd: shutdown: %v", err)
	}
	s.Close()
	log.Printf("pmemd: exited cleanly")
}
