// Command pmemd serves the calibrated machine simulation as a long-lived
// HTTP daemon — the paper's bandwidth model as a queryable performance
// oracle instead of a batch CLI.
//
// Usage:
//
//	pmemd [-addr :8080] [-workers 0] [-queue 64] [-cache-bytes 67108864]
//	      [-cache-dir DIR] [-cache-memtable-bytes 4194304]
//	      [-job-timeout 2m] [-drain-timeout 30s] [-max-sf 1]
//	      [-debug-addr localhost:6060] [-chaos] [-chaos-plan plan.json]
//	      [-log-json]
//
// API:
//
//	POST /v1/run            submit an experiment (optionally with an ad-hoc
//	                        machine model); waits for the result unless
//	                        "async": true. "trace": true records the run's
//	                        simulated-time timeline
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/jobs/{id}/trace  the job's timeline as Chrome trace-event JSON
//	                        (open in Perfetto / chrome://tracing)
//	GET  /v1/experiments    the experiment catalog
//	GET  /metrics           Prometheus text exposition (server_* counters,
//	                        latency histograms, pmemd_build_info, plus the
//	                        cumulative sim_* hardware counters)
//	GET  /version           build metadata as JSON
//	GET  /healthz, /readyz  liveness / readiness
//
// Every response carries an X-Request-ID (echoed from the request when the
// client supplied one) and each request is logged as one structured line.
// -debug-addr exposes net/http/pprof on a separate listener, keeping the
// profiling surface off the serving port. Identical requests are answered
// from the content-addressed result cache; concurrent identical submissions
// coalesce onto one simulation. With -cache-dir a persistent SSTable tier
// sits under the in-memory LRU: results are written through to disk and
// survive restarts (X-Pmemd-Cache: disk — no recompute). SIGTERM or SIGINT
// drains in-flight jobs (bounded by -drain-timeout), flushes the disk
// tier's memtable, and exits.
//
// Requests may carry X-Pmemd-Deadline (remaining milliseconds): the handler
// stops waiting — and caps the job's own context — at that deadline, and
// every result body is answered with its X-Pmemd-Content-SHA256 so callers
// can verify integrity end to end. -chaos mounts the /v1/chaos control
// endpoints and wires the armed plan's sst-corrupt events into the disk
// tier's read path, where the per-record CRC must catch them; -chaos-plan
// additionally arms a plan at startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation pool width; 0 = GOMAXPROCS")
	queue := flag.Int("queue", 64, "admitted jobs that may wait beyond the pool width before 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job simulation timeout (queue wait included)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	maxSF := flag.Float64("max-sf", 1, "largest scale factor a request may ask for; negative = unbounded")
	retryAttempts := flag.Int("retry-attempts", 2, "retries for jobs failing with a transient error (bounded exponential backoff)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "initial transient-error retry backoff (doubles per retry, with deterministic jitter)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
	logJSON := flag.Bool("log-json", false, "emit the structured log as JSON instead of logfmt-style text")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent SSTable result tier; empty = memory-only cache")
	cacheMemtable := flag.Int64("cache-memtable-bytes", 4<<20, "disk tier memtable flush threshold")
	chaosEnabled := flag.Bool("chaos", false, "mount /v1/chaos and wire armed sst-corrupt events into the disk tier's read path")
	chaosPlan := flag.String("chaos-plan", "", "chaos plan JSON file to arm at startup (implies -chaos)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// The worker's chaos seam is the disk read path: an armed sst-corrupt
	// event flips bits in SSTable record payloads before the per-record CRC
	// check, which must catch them and fall through to recompute.
	var ctl *chaos.Controller
	var tamper func([]byte) []byte
	if *chaosEnabled || *chaosPlan != "" {
		ctl = chaos.NewController(nil)
		tamper = ctl.TamperRecord
		if *chaosPlan != "" {
			raw, err := os.ReadFile(*chaosPlan)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemd:", err)
				os.Exit(2)
			}
			p, err := chaos.Parse(raw)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemd: chaos plan:", err)
				os.Exit(2)
			}
			if err := ctl.Arm(p); err != nil {
				fmt.Fprintln(os.Stderr, "pmemd: chaos plan:", err)
				os.Exit(2)
			}
			logger.Info("chaos plan armed at startup", "plan", *chaosPlan)
		}
	}

	s, err := server.New(server.Options{
		Workers:                *workers,
		QueueDepth:             *queue,
		CacheBytes:             *cacheBytes,
		JobTimeout:             *jobTimeout,
		MaxSF:                  *maxSF,
		Logger:                 logger,
		RetryAttempts:          *retryAttempts,
		RetryBackoff:           *retryBackoff,
		DiskCacheDir:           *cacheDir,
		DiskCacheMemtableBytes: *cacheMemtable,
		DiskReadTamper:         tamper,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemd:", err)
		os.Exit(1)
	}
	h := s.Handler()
	if ctl != nil {
		outer := http.NewServeMux()
		ctl.Register(outer)
		outer.Handle("/", h)
		h = outer
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	bi := server.ReadBuildInfo()
	logger.Info("serving",
		"addr", *addr, "version", bi.Version, "go", bi.GoVersion, "revision", bi.Revision,
		"workers", s.Pool().Width(), "queue", *queue, "cache_bytes", *cacheBytes)

	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("pprof listener failed", "error", err.Error())
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pmemd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop admitting, let in-flight simulations (and the handlers
	// waiting on them) finish, then close the listener.
	logger.Info("draining", "timeout", drainTimeout.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(shCtx); err != nil {
		logger.Warn("drain incomplete", "error", err.Error())
	}
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("shutdown error", "error", err.Error())
	}
	s.Close()
	logger.Info("exited cleanly")
}
