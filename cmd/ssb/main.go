// Command ssb runs the Star Schema Benchmark on the simulated machine with
// either engine, reproducing Figure 14 and Table 1 style runs from the CLI.
//
// Examples:
//
//	ssb -engine aware -device pmem -sf 0.1 -target 100
//	ssb -engine naive -device dram -sf 0.1 -target 50 -query Q2.1
//	ssb -engine aware -device pmem -threads 18 -sockets 1 -target 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"repro/internal/access"
	"repro/internal/aware"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/naive"
	"repro/internal/ssb"
)

func main() {
	engine := flag.String("engine", "aware", "aware (handcrafted, Section 6.2) or naive (Hyrise-like, Section 6.1)")
	device := flag.String("device", "pmem", "pmem or dram")
	sf := flag.Float64("sf", 0.1, "scale factor to generate and execute")
	target := flag.Float64("target", 0, "scale the reported timings to this sf (0 = same as -sf)")
	threads := flag.Int("threads", 0, "thread count (0 = engine default)")
	sockets := flag.Int("sockets", 0, "sockets for the aware engine (0 = default 2)")
	pin := flag.String("pin", "cores", "cores or numa (aware engine)")
	numa := flag.Bool("numa-aware", true, "NUMA-aware placement (aware engine)")
	query := flag.String("query", "", "run a single query (e.g. Q2.1); empty = all 13")
	showResult := flag.Bool("rows", false, "print the query result rows")
	dump := flag.String("dump", "", "write dbgen-format .tbl files to this directory and exit")
	showSQL := flag.Bool("sql", false, "print each query's SQL before running it")
	explain := flag.Bool("explain", false, "print the engine's execution plan instead of running")
	flag.Parse()

	dev := access.PMEM
	if *device == "dram" {
		dev = access.DRAM
	} else if *device != "pmem" {
		fatal(fmt.Errorf("unknown device %q", *device))
	}
	pol := cpu.PinCores
	if *pin == "numa" {
		pol = cpu.PinNUMA
	}

	fmt.Fprintf(os.Stderr, "generating SSB data at sf %g...\n", *sf)
	data, err := ssb.Generate(*sf)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s\n", data)

	if *dump != "" {
		for _, table := range ssb.TableNames() {
			path := filepath.Join(*dump, table+".tbl")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := ssb.WriteTable(f, data, table); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return
	}

	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	var run func(q ssb.Query) (ssb.Result, float64, error)
	var plan func(q ssb.Query) string
	switch *engine {
	case "aware":
		e, err := aware.New(m, data, aware.Options{
			Device: dev, Threads: *threads, Sockets: *sockets,
			Pinning: pol, NUMAAware: *numa, TargetSF: *target,
		})
		if err != nil {
			fatal(err)
		}
		run = func(q ssb.Query) (ssb.Result, float64, error) {
			r, err := e.Run(q)
			return r.Result, r.Seconds, err
		}
		plan = e.Plan
	case "naive":
		th := *threads
		e, err := naive.New(m, data, naive.Options{Device: dev, Threads: th, TargetSF: *target})
		if err != nil {
			fatal(err)
		}
		run = func(q ssb.Query) (ssb.Result, float64, error) {
			r, err := e.Run(q)
			return r.Result, r.Seconds, err
		}
		plan = e.Plan
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	queries := ssb.Queries()
	if *query != "" {
		q, err := ssb.QueryByID(*query)
		if err != nil {
			fatal(err)
		}
		queries = []ssb.Query{q}
	}

	if *explain {
		for _, q := range queries {
			fmt.Println(plan(q))
		}
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tseconds\tgroups")
	var total float64
	for _, q := range queries {
		if *showSQL {
			w.Flush()
			fmt.Printf("-- %s\n%s\n", q.ID, q.SQL)
		}
		res, sec, err := run(q)
		if err != nil {
			fatal(err)
		}
		total += sec
		fmt.Fprintf(w, "%s\t%.3f\t%d\n", q.ID, sec, len(res))
		if *showResult {
			w.Flush()
			for _, row := range res.Rows(q) {
				fmt.Printf("    %-40s %d\n", row.Key, row.Value)
			}
		}
	}
	fmt.Fprintf(w, "TOTAL\t%.3f\t\n", total)
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssb:", err)
	os.Exit(1)
}
