// Command pmemfleet is the fleet front-end: it shards POST /v1/run requests
// (and /v1/batch sweep points) across N pmemd workers over the plain
// HTTP/JSON API. The default key-affinity policy rendezvous-hashes each
// request's canonical SHA-256 cache key, so identical requests — however
// respelled, whichever entry point takes them — land on the worker whose
// LRU + SSTable tiers already hold the answer.
//
// Usage:
//
//	pmemfleet -workers w1=http://h1:8080,w2=http://h2:8080 [-addr :8070]
//	          [-policy affinity|round-robin|least-loaded] [-max-sf 1]
//	          [-cooldown 2s] [-load-ttl 500ms] [-worker-timeout 5m]
//	          [-retry-budget 2] [-hedge-after 0] [-breaker-window 20]
//	          [-breaker-threshold 0.5] [-chaos] [-chaos-plan plan.json]
//	          [-log-json]
//
// Bare URLs in -workers are auto-named w1, w2, ... by position; named
// entries (name=url) are preferred in production because the name keys the
// rendezvous hash — keep it stable across router restarts.
//
// -worker-timeout bounds one upstream attempt (not the whole request:
// failover and hedging may spend several attempts); requests carrying an
// X-Pmemd-Deadline header get min(worker-timeout, remaining deadline) per
// attempt. -hedge-after 0 hedges synchronous runs adaptively at the
// observed p95 attempt latency, a positive duration hedges after that fixed
// delay, and a negative one disables hedging. -chaos mounts the /v1/chaos
// control endpoints and routes every upstream request through the chaos
// transport so a harness (cmd/pmemchaos) can inject faults between router
// and workers; -chaos-plan additionally arms a plan at startup.
//
// API (same shapes as pmemd where they overlap):
//
//	POST /v1/run          route one run to a worker; response carries
//	                      X-Pmemfleet-Worker plus the worker's
//	                      X-Pmemd-Cache tier (hit | disk | coalesced | miss)
//	POST /v1/batch        {"requests":[run, run, ...]} — scatter the points
//	                      across the fleet, gather ordered results
//	GET  /v1/workers      per-worker health and circuit-breaker state
//	GET  /v1/experiments  proxied from the first answering worker
//	GET  /metrics         router metrics (fleet_* counters)
//	GET  /metrics.json    the same registry as a JSON snapshot (pmemdoctor)
//	POST /v1/chaos        arm a chaos plan (-chaos only); GET status, DELETE disarm
//	GET  /healthz, /readyz  readiness = at least one admittable worker
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	workersFlag := flag.String("workers", "", "comma-separated pmemd backends, each name=url or a bare url (auto-named w1, w2, ...)")
	policy := flag.String("policy", fleet.PolicyAffinity, "routing policy: affinity, round-robin, or least-loaded")
	maxSF := flag.Float64("max-sf", 1, "largest scale factor a request may ask for at the router edge; negative = unbounded")
	cooldown := flag.Duration("cooldown", 2*time.Second, "how long a tripped breaker stays open before its half-open probe")
	loadTTL := flag.Duration("load-ttl", 500*time.Millisecond, "how long scraped worker load gauges stay fresh (least-loaded policy)")
	workerTimeout := flag.Duration("worker-timeout", 5*time.Minute, "per-attempt timeout against a worker (deadline-capped when the request carries X-Pmemd-Deadline)")
	retryBudget := flag.Int("retry-budget", 2, "extra attempts (failovers + hedges) one request may spend beyond its first; negative = none")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a synchronous run after this delay; 0 = adaptive (observed p95), negative = disabled")
	breakerWindow := flag.Int("breaker-window", 20, "per-worker outcome window the breaker failure rate is computed over")
	breakerThreshold := flag.Float64("breaker-threshold", 0.5, "failure rate in (0,1] that trips a worker's breaker open")
	chaosEnabled := flag.Bool("chaos", false, "mount /v1/chaos and route upstream requests through the chaos injection transport")
	chaosPlan := flag.String("chaos-plan", "", "chaos plan JSON file to arm at startup (implies -chaos)")
	logJSON := flag.Bool("log-json", false, "emit the structured log as JSON instead of logfmt-style text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemfleet:", err)
		os.Exit(2)
	}

	// The chaos seam sits between router and workers: the controller owns
	// the armed plan, the transport consults it per upstream request. With
	// -chaos but no plan armed it is a transparent pass-through.
	var ctl *chaos.Controller
	client := &http.Client{}
	if *chaosEnabled || *chaosPlan != "" {
		ctl = chaos.NewController(nil)
		client.Transport = chaos.NewTransport(nil, ctl)
		if *chaosPlan != "" {
			raw, err := os.ReadFile(*chaosPlan)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemfleet:", err)
				os.Exit(2)
			}
			p, err := chaos.Parse(raw)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmemfleet: chaos plan:", err)
				os.Exit(2)
			}
			if err := ctl.Arm(p); err != nil {
				fmt.Fprintln(os.Stderr, "pmemfleet: chaos plan:", err)
				os.Exit(2)
			}
			logger.Info("chaos plan armed at startup", "plan", *chaosPlan)
		}
	}

	rt, err := fleet.New(fleet.Options{
		Workers:          workers,
		Policy:           *policy,
		Client:           client,
		WorkerTimeout:    *workerTimeout,
		HealthCooldown:   *cooldown,
		BreakerWindow:    *breakerWindow,
		BreakerThreshold: *breakerThreshold,
		RetryBudget:      *retryBudget,
		HedgeAfter:       *hedgeAfter,
		LoadTTL:          *loadTTL,
		MaxSF:            *maxSF,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemfleet:", err)
		os.Exit(2)
	}

	h := rt.Handler()
	if ctl != nil {
		outer := http.NewServeMux()
		ctl.Register(outer)
		outer.Handle("/", h)
		h = outer
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = w.Name + "=" + w.URL
	}
	logger.Info("fleet serving", "addr", *addr, "policy", *policy,
		"workers", strings.Join(names, ","), "chaos", ctl != nil)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pmemfleet:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("shutdown error", "error", err.Error())
	}
	logger.Info("exited cleanly")
}

// parseWorkers decodes the -workers flag: comma-separated entries, each
// "name=url" or a bare URL auto-named by position.
func parseWorkers(s string) ([]fleet.Worker, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no workers: pass -workers name=url[,name=url...]")
	}
	var out []fleet.Worker
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, found := strings.Cut(entry, "=")
		if !found {
			name, url = fmt.Sprintf("w%d", i+1), entry
		}
		out = append(out, fleet.Worker{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)})
	}
	return out, nil
}
