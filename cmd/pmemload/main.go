// Command pmemload replays an internal/queueing arrival spec as real HTTP
// traffic against a pmemd worker or a pmemfleet router. Each generated
// arrival becomes one POST /v1/run whose experiment is chosen by the
// arrival's query kind (scan-s→fig04, scan-l→fig05, probe→fig12,
// ingest→fig09), so the same deterministic traffic shapes the serving
// simulation studies can also be fired at live serving processes.
//
// Usage:
//
//	pmemload -target http://localhost:8070 [-spec spec.json] [-passes 2]
//	         [-concurrency 8] [-pace 0] [-sf 0.02] [-quick] [-timeout 2m]
//	         [-deadline 0] [-max-errors 0] [-expect-hit-ratio -1]
//
// The report (JSON on stdout) carries, per pass: end-to-end throughput,
// per-class latency percentiles (nearest-rank p50/p90/p99), and the
// cache-tier breakdown (memory hit / disk hit / coalesced / miss) read
// from the X-Pmemd-Cache header. Responses are content-hashed per request
// body: any pass whose bytes differ from the first pass counts as a
// divergence, and divergences (or request errors) make pmemload exit 1 —
// the determinism contract, enforced from the outside. -expect-hit-ratio
// additionally fails the run if the final pass's (memory+disk) hit share
// is below the threshold (negative disables the check).
//
// -pace replays arrivals on their simulated timeline scaled by the given
// factor (e.g. 2 = twice real-time speed); 0 fires as fast as
// -concurrency allows.
//
// Fail-fast: -timeout bounds each request client-side, -deadline also
// propagates the budget to the server as X-Pmemd-Deadline (remaining
// milliseconds — the fleet caps every attempt and the worker its job
// context at it), and -max-errors aborts the run the moment that many
// requests have failed instead of grinding through a dead fleet (0 = run
// everything). Responses carrying X-Pmemd-Content-SHA256 are verified
// against the received bytes; a mismatch counts as an error.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queueing"
	"repro/internal/server"
)

// kindExperiment maps an arrival's query kind to the experiment a live
// worker runs for it: scans exercise the bandwidth sweeps, probes the
// latency study, ingest the write path.
var kindExperiment = map[string]string{
	queueing.KindScanSmall: "fig04",
	queueing.KindScanLarge: "fig05",
	queueing.KindProbe:     "fig12",
	queueing.KindIngest:    "fig09",
}

// defaultSpec is the built-in traffic when -spec is not given: two clients
// with distinct mixes, small enough to replay in seconds.
const defaultSpec = `{
	"seed": 7,
	"horizon": 4,
	"clients": [
		{"name": "olap", "rate_qps": 3, "queries": [{"kind": "scan-s"}, {"kind": "probe"}]},
		{"name": "etl", "rate_qps": 1.5, "queries": [{"kind": "ingest"}, {"kind": "scan-l"}]}
	]
}`

// shot is one planned request: the arrival it came from plus the exact
// body fired at the target (identical arrivals share identical bodies, so
// repeats and duplicates exercise the cache tiers).
type shot struct {
	arrival queueing.Arrival
	body    []byte
}

// shotResult is one completed request.
type shotResult struct {
	class    string
	tier     string // hit | disk | coalesced | miss | "" on error
	latency  float64
	status   int
	err      error
	bodyHash [32]byte
}

// ClassLatency summarizes one SLO class's end-to-end latencies.
type ClassLatency struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// PassReport is one replay pass over the arrival schedule.
type PassReport struct {
	Pass        int                     `json:"pass"`
	Requests    int                     `json:"requests"`
	Errors      int                     `json:"errors"`
	WallSeconds float64                 `json:"wall_seconds"`
	Throughput  float64                 `json:"throughput_rps"`
	Tiers       map[string]int          `json:"tiers"`
	HitRatio    float64                 `json:"hit_ratio"`
	Classes     map[string]ClassLatency `json:"classes"`
}

// Report is pmemload's full JSON output.
type Report struct {
	Target      string       `json:"target"`
	Arrivals    int          `json:"arrivals"`
	Passes      []PassReport `json:"passes"`
	Divergences int          `json:"divergences"`
	Aborted     bool         `json:"aborted,omitempty"` // -max-errors tripped mid-replay
}

// loader carries the per-request knobs plus the shared error tally the
// -max-errors abort watches.
type loader struct {
	client   *http.Client
	target   string
	deadline time.Duration
	maxErrs  int64
	errs     atomic.Int64
}

// exhausted reports whether the error budget is spent.
func (ld *loader) exhausted() bool {
	return ld.maxErrs > 0 && ld.errs.Load() >= ld.maxErrs
}

func main() {
	target := flag.String("target", "", "base URL of the pmemd worker or pmemfleet router (required)")
	specPath := flag.String("spec", "", "arrival spec JSON file (internal/queueing format); empty = built-in two-client mix")
	passes := flag.Int("passes", 2, "replay the schedule this many times (pass 2+ should hit the cache)")
	concurrency := flag.Int("concurrency", 8, "in-flight request cap")
	pace := flag.Float64("pace", 0, "replay speed relative to simulated time (2 = 2x real time); 0 = as fast as possible")
	sf := flag.Float64("sf", 0.02, "scale factor spelled into every request")
	quick := flag.Bool("quick", true, "request quick (trimmed-axis) experiment runs")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	deadline := flag.Duration("deadline", 0, "per-request X-Pmemd-Deadline propagated to the server; 0 = none")
	maxErrors := flag.Int("max-errors", 0, "abort the replay once this many requests have failed; 0 = no limit")
	expectHitRatio := flag.Float64("expect-hit-ratio", -1, "fail unless the final pass's (memory+disk) hit share is at least this; negative = no check")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "pmemload: -target is required")
		os.Exit(2)
	}
	specJSON := []byte(defaultSpec)
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmemload:", err)
			os.Exit(2)
		}
		specJSON = b
	}
	spec, err := queueing.ParseSpec(specJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemload:", err)
		os.Exit(2)
	}
	arrivals := queueing.Generate(spec)
	if len(arrivals) == 0 {
		fmt.Fprintln(os.Stderr, "pmemload: spec generates no arrivals")
		os.Exit(2)
	}
	shots, err := planShots(arrivals, *sf, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemload:", err)
		os.Exit(2)
	}

	ld := &loader{
		client:   &http.Client{Timeout: *timeout},
		target:   *target,
		deadline: *deadline,
		maxErrs:  int64(*maxErrors),
	}
	report := Report{Target: *target, Arrivals: len(shots)}
	// firstHash pins each distinct request body to the bytes pass 1 saw;
	// later passes must reproduce them exactly.
	firstHash := map[string][32]byte{}
	exitCode := 0
	for pass := 1; pass <= *passes; pass++ {
		results, wall := ld.firePass(shots, *concurrency, *pace)
		pr := summarize(pass, results, wall)
		report.Passes = append(report.Passes, pr)
		if pr.Errors > 0 {
			exitCode = 1
		}
		for i, r := range results {
			if r.err != nil || r.status != http.StatusOK {
				continue
			}
			key := string(shots[i].body)
			if prev, ok := firstHash[key]; !ok {
				firstHash[key] = r.bodyHash
			} else if prev != r.bodyHash {
				report.Divergences++
			}
		}
		if ld.exhausted() {
			report.Aborted = true
			fmt.Fprintf(os.Stderr, "pmemload: aborted after %d errors (-max-errors %d)\n",
				ld.errs.Load(), *maxErrors)
			exitCode = 1
			break
		}
	}
	if report.Divergences > 0 {
		fmt.Fprintf(os.Stderr, "pmemload: %d divergent responses (identical requests, different bytes)\n", report.Divergences)
		exitCode = 1
	}
	if *expectHitRatio >= 0 && len(report.Passes) > 0 {
		last := report.Passes[len(report.Passes)-1]
		if last.HitRatio < *expectHitRatio {
			fmt.Fprintf(os.Stderr, "pmemload: final pass hit ratio %.3f below required %.3f\n",
				last.HitRatio, *expectHitRatio)
			exitCode = 1
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "pmemload:", err)
		exitCode = 1
	}
	os.Exit(exitCode)
}

// planShots renders each arrival into its request body once, so every pass
// fires byte-identical traffic.
func planShots(arrivals []queueing.Arrival, sf float64, quick bool) ([]shot, error) {
	shots := make([]shot, len(arrivals))
	for i, a := range arrivals {
		id, ok := kindExperiment[a.Kind]
		if !ok {
			return nil, fmt.Errorf("no experiment mapping for query kind %q", a.Kind)
		}
		body, err := json.Marshal(map[string]any{"id": id, "sf": sf, "quick": quick})
		if err != nil {
			return nil, err
		}
		shots[i] = shot{arrival: a, body: body}
	}
	return shots, nil
}

// firePass replays the schedule once and returns one result per fired shot
// (same order as shots) plus the wall-clock duration. When -max-errors
// trips mid-pass no further shots are launched, so the result slice may be
// a prefix of the schedule.
func (ld *loader) firePass(shots []shot, concurrency int, pace float64) ([]shotResult, float64) {
	if concurrency < 1 {
		concurrency = 1
	}
	results := make([]shotResult, len(shots))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	fired := 0
	for i := range shots {
		if ld.exhausted() {
			break
		}
		if pace > 0 {
			due := start.Add(time.Duration(shots[i].arrival.At / pace * float64(time.Second)))
			time.Sleep(time.Until(due))
		}
		sem <- struct{}{}
		wg.Add(1)
		fired++
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = ld.fire(shots[i])
			if results[i].err != nil || results[i].status != http.StatusOK {
				ld.errs.Add(1)
			}
		}(i)
	}
	wg.Wait()
	return results[:fired], time.Since(start).Seconds()
}

func (ld *loader) fire(s shot) shotResult {
	res := shotResult{class: s.arrival.Class}
	req, err := http.NewRequest(http.MethodPost, ld.target+"/v1/run", bytes.NewReader(s.body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	if ld.deadline > 0 {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(ld.deadline.Milliseconds(), 10))
	}
	t0 := time.Now()
	resp, err := ld.client.Do(req)
	res.latency = time.Since(t0).Seconds()
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	res.latency = time.Since(t0).Seconds()
	if err != nil {
		res.err = err
		return res
	}
	res.status = resp.StatusCode
	res.tier = resp.Header.Get("X-Pmemd-Cache")
	res.bodyHash = sha256.Sum256(body)
	// End-to-end integrity: the server hashed what it sent; we hash what we
	// received. Any disagreement is corruption in between.
	if want := resp.Header.Get(server.ContentSHAHeader); want != "" {
		if got := hex.EncodeToString(res.bodyHash[:]); got != want {
			res.err = fmt.Errorf("integrity: body sha256 %s != header %s", got[:12], want[:min(12, len(want))])
			res.status = 0
		}
	}
	return res
}

// summarize folds one pass's results into its report entry.
func summarize(pass int, results []shotResult, wall float64) PassReport {
	pr := PassReport{
		Pass:     pass,
		Requests: len(results),
		Tiers:    map[string]int{},
		Classes:  map[string]ClassLatency{},
	}
	pr.WallSeconds = wall
	byClass := map[string][]float64{}
	hits := 0
	for _, r := range results {
		if r.err != nil || r.status != http.StatusOK {
			pr.Errors++
			continue
		}
		tier := r.tier
		if tier == "" {
			tier = "unknown"
		}
		pr.Tiers[tier]++
		if tier == "hit" || tier == "disk" {
			hits++
		}
		byClass[r.class] = append(byClass[r.class], r.latency)
	}
	if ok := pr.Requests - pr.Errors; ok > 0 {
		pr.HitRatio = float64(hits) / float64(ok)
	}
	if wall > 0 {
		pr.Throughput = float64(pr.Requests-pr.Errors) / wall
	}
	for class, lats := range byClass {
		sort.Float64s(lats)
		pr.Classes[class] = ClassLatency{
			Count:  len(lats),
			MeanMS: 1e3 * mean(lats),
			P50MS:  1e3 * percentile(lats, 0.50),
			P90MS:  1e3 * percentile(lats, 0.90),
			P99MS:  1e3 * percentile(lats, 0.99),
		}
	}
	return pr
}

// percentile is the nearest-rank percentile on a sorted slice — the same
// convention internal/queueing reports simulated latencies with.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
