// Command experiments regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	experiments [-sf 0.1] [-quick] [-id fig03] [-list] [-j 8] [-metrics] [-o out.txt] [-trace dir]
//
// Without -id, every registered experiment runs (the full reproduction) on a
// worker pool of -j goroutines; tables stream in stable ID order and are
// byte-identical for any -j, so the output format stays the one recorded in
// EXPERIMENTS.md. -metrics appends each experiment's simulation-counter
// snapshot (the hardware-counter analogue: per-channel bytes, XPBuffer hit
// rate, UPI crossings, ...) and -metrics-json exports the suite aggregate.
// -list prints the experiment catalog (the same listing pmemd serves at
// GET /v1/experiments). -trace writes one Chrome trace-event JSON timeline
// per experiment to the given directory (<id>.trace.json, loadable in
// Perfetto); the files are byte-identical for any -j. Ctrl-C / SIGTERM
// cancels the run cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/queueing"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor the SSB engines execute at (traffic scales to sf 50/100)")
	quick := flag.Bool("quick", false, "trim sweep axes for a fast smoke run")
	id := flag.String("id", "", "run a single experiment (e.g. fig03, tab01); empty = all")
	list := flag.Bool("list", false, "print the experiment catalog and exit")
	out := flag.String("o", "", "write output to this file instead of stdout")
	format := flag.String("format", "text", "text or csv")
	jobs := flag.Int("j", 0, "worker-pool width; 0 = GOMAXPROCS (output is identical for any width)")
	showMetrics := flag.Bool("metrics", false, "append each experiment's metrics snapshot to the output")
	metricsJSON := flag.String("metrics-json", "", "write the aggregate metrics snapshot as JSON to this file ('-' = stdout)")
	traceDir := flag.String("trace", "", "write each experiment's simulated-time timeline to <dir>/<id>.trace.json")
	sweepJ := flag.Int("sweep-j", 1, "intra-experiment sweep parallelism on a pool shared with -j; output is identical for any width (forced serial when metrics or traces are recorded)")
	arrivals := flag.String("arrivals", "", "replace the serve0x experiments' built-in traffic with this arrival spec, inline JSON or a path to a spec file (see internal/queueing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		experiments.FprintCatalog(os.Stdout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memprofile)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{SF: *sf, Quick: *quick, Jobs: *jobs, EmitMetrics: *showMetrics, TraceDir: *traceDir, SweepWidth: *sweepJ}
	if *arrivals != "" {
		src := []byte(*arrivals)
		if !strings.HasPrefix(strings.TrimSpace(*arrivals), "{") {
			b, err := os.ReadFile(*arrivals)
			if err != nil {
				fatal(err)
			}
			src = b
		}
		spec, err := queueing.ParseSpec(src)
		if err != nil {
			fatal(fmt.Errorf("-arrivals: %w", err))
		}
		cfg.Arrivals = spec
	}
	// -metrics-json consumes the aggregate float counters even without
	// -metrics; concurrent sweep points would reorder their accumulation,
	// so force the serial path (the Config gate handles -metrics/-trace).
	if *metricsJSON != "" {
		cfg.SweepWidth = 1
	}
	if cfg.SweepWidth > 1 {
		// One pool bounds total simulation concurrency: experiment workers
		// acquire a slot each, sweep workers borrow the spare ones.
		width := *jobs
		if width <= 0 {
			width = runtime.GOMAXPROCS(0)
		}
		if cfg.SweepWidth > width {
			width = cfg.SweepWidth
		}
		cfg.Pool = experiments.NewPool(width)
	}
	exps := experiments.All()
	if *id != "" {
		e, err := experiments.ByID(*id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; valid experiments are:\n", *id)
			experiments.FprintCatalog(os.Stderr)
			os.Exit(1)
		}
		exps = []experiments.Experiment{e}
	}

	if *format == "csv" {
		// CSV rendering streams per-table; metrics text is suppressed (use
		// -metrics-json for machine-readable counters alongside CSV).
		cfg.EmitMetrics = false
		var agg = runCSV(ctx, cfg, exps, w)
		writeMetricsJSON(*metricsJSON, agg)
		return
	}

	agg, err := experiments.RunList(ctx, cfg, exps, w)
	if err != nil {
		fatal(err)
	}
	writeMetricsJSON(*metricsJSON, agg)
}

func runCSV(ctx context.Context, cfg experiments.Config, list []experiments.Experiment, w io.Writer) (agg metrics.Snapshot) {
	for res := range experiments.RunConcurrent(ctx, cfg, list) {
		if res.Err != nil {
			fatal(res.Err)
		}
		for _, t := range res.Tables {
			t.FprintCSV(w)
		}
		if cfg.TraceDir != "" {
			if err := experiments.WriteTraceFile(cfg.TraceDir, res.Experiment.ID, res.Trace); err != nil {
				fatal(err)
			}
		}
		agg = metrics.Merge(agg, res.Metrics)
	}
	return agg
}

func writeMetricsJSON(path string, agg metrics.Snapshot) {
	if path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := agg.WriteJSON(w); err != nil {
		fatal(err)
	}
}

// writeMemProfile dumps the heap profile after a GC, mirroring
// `go test -memprofile`.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
