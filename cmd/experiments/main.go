// Command experiments regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	experiments [-sf 0.1] [-quick] [-id fig03] [-o out.txt]
//
// Without -id, every registered experiment runs (the full reproduction);
// the output format is the one recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor the SSB engines execute at (traffic scales to sf 50/100)")
	quick := flag.Bool("quick", false, "trim sweep axes for a fast smoke run")
	id := flag.String("id", "", "run a single experiment (e.g. fig03, tab01); empty = all")
	out := flag.String("o", "", "write output to this file instead of stdout")
	format := flag.String("format", "text", "text or csv")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{SF: *sf, Quick: *quick}
	print := func(t experiments.Table) {
		if *format == "csv" {
			t.FprintCSV(w)
		} else {
			t.Fprint(w)
		}
	}
	var list []experiments.Experiment
	if *id == "" {
		list = experiments.All()
	} else {
		e, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		list = []experiments.Experiment{e}
	}
	for _, e := range list {
		if *format != "csv" {
			fmt.Fprintf(w, "# %s: %s\n\n", e.ID, e.Title)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			print(t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
