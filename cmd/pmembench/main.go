// Command pmembench measures the bandwidth of one workload point — or a
// sweep — on the simulated machine, mirroring the paper's microbenchmark
// binary.
//
// Examples:
//
//	pmembench -dir read -pattern individual -size 4096 -threads 18
//	pmembench -dir write -pattern grouped -size 64 -threads 36
//	pmembench -dir read -size 4096 -far             # cold far access
//	pmembench -dir read -size 4096 -far -warm       # after warm-up
//	pmembench -dir read -sweep threads
//	pmembench -device dram -dir read -pattern random -size 512 -threads 36
//	pmembench -advise -dir write                    # print best practices
//	pmembench -trace workload.trace                 # replay a trace file
//	pmembench -arrivals traffic.json                # serve a query stream
//	pmembench -sweep threads -trace-dir traces      # + Perfetto timeline
//	pmembench -sweep threads -sweep-j 4             # parallel sweep points
//	pmembench -bench-json BENCH_sim.json            # tier-0 benchmark report
//
// -sweep-j N evaluates sweep points concurrently, each on its own fresh
// machine, so the output is byte-identical at any width; 0 (the default)
// keeps the classic serial sweep on one shared machine. -bench-json runs
// the tier-0 experiment catalogue as a benchmark and writes a BENCH_sim
// report; with -bench-baseline it exits non-zero when wall-clock regresses
// past -bench-tolerance. -cpuprofile/-memprofile write pprof profiles.
//
// -arrivals switches to serve mode: instead of one workload point, the
// machine serves a deterministic query stream described by an arrival spec
// (inline JSON or a file; see internal/queueing) and the report covers
// per-SLO-class latency percentiles, conservation counts, and fairness.
// Serve mode composes with -faults, -metrics, and -trace-dir.
//
// -trace-dir writes the machine's simulated-time timeline (every run laid
// end to end) to <dir>/pmembench.trace.json in Chrome trace-event format.
// Ctrl-C / SIGTERM stops a sweep cleanly between points; the timeline for
// the completed points is still written.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/doctor"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/simtrace"
	"repro/internal/trace"
)

func main() {
	device := flag.String("device", "pmem", "pmem or dram")
	dir := flag.String("dir", "read", "read or write")
	pattern := flag.String("pattern", "individual", "grouped, individual, or random")
	size := flag.Int64("size", 4096, "access size in bytes")
	threads := flag.Int("threads", 18, "thread count")
	pin := flag.String("pin", "cores", "cores, numa, or none")
	far := flag.Bool("far", false, "access the remote socket's memory")
	warm := flag.Bool("warm", false, "pre-establish cross-socket mappings")
	prefetcher := flag.Bool("prefetcher", true, "L2 hardware prefetcher enabled")
	sweep := flag.String("sweep", "", "sweep an axis: 'threads' or 'size'")
	sweepJ := flag.Int("sweep-j", 0, "evaluate sweep points concurrently, each on a fresh machine; 0 = classic serial sweep sharing one machine (output is identical for any value >= 1)")
	verbose := flag.Bool("verbose", false, "print peak resource utilizations (the bottleneck report)")
	showMetrics := flag.Bool("metrics", false, "print the machine's metrics snapshot (simulated hardware counters) after the run")
	metricsJSON := flag.String("metrics-json", "", "write the metrics snapshot as JSON to this file ('-' = stdout)")
	advise := flag.Bool("advise", false, "print the best-practice advice for the workload instead of measuring")
	traceFile := flag.String("trace", "", "replay a workload trace file (see internal/trace for the format)")
	traceDir := flag.String("trace-dir", "", "write the simulated-time timeline to <dir>/pmembench.trace.json (Chrome trace-event JSON, loadable in Perfetto)")
	configFile := flag.String("config", "", "machine config JSON (partial overrides of the calibrated defaults; see machine.ConfigFromJSON)")
	faultsFlag := flag.String("faults", "", "deterministic fault plan: inline JSON or a path to a plan file (see internal/faults)")
	arrivalsFlag := flag.String("arrivals", "", "serve mode: run the query-stream serving co-simulation under this arrival spec, inline JSON or a path to a spec file (see internal/queueing)")
	benchJSON := flag.String("bench-json", "", "run the tier-0 experiment catalogue as a benchmark and write BENCH_sim.json to this file ('-' = stdout)")
	benchBaseline := flag.String("bench-baseline", "", "compare the -bench-json run against this committed BENCH_sim.json and exit non-zero on regression")
	benchTolerance := flag.Float64("bench-tolerance", 0.20, "allowed wall-clock regression vs the calibration-scaled baseline (0.20 = +20%)")
	benchDiagnose := flag.Bool("diagnose", false, "with -bench-json and -bench-baseline: print the doctor's regression triage (ranked mechanisms with counter evidence) to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memprofile)

	if *benchJSON != "" {
		runBenchMode(ctx, *benchJSON, *benchBaseline, *benchTolerance, *benchDiagnose)
		return
	}

	d, err := parseDir(*dir)
	if err != nil {
		fatal(err)
	}
	p, err := parsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	dev, err := parseDevice(*device)
	if err != nil {
		fatal(err)
	}
	pol, err := parsePin(*pin)
	if err != nil {
		fatal(err)
	}

	if *advise {
		a := core.Advise(core.WorkloadDesc{Dir: d, Pattern: p, FullControl: pol == cpu.PinCores})
		fmt.Println(a)
		return
	}

	cfg := machine.DefaultConfig()
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			fatal(err)
		}
		cfg, err = machine.ConfigFromJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *faultsFlag != "" {
		src := []byte(*faultsFlag)
		if !strings.HasPrefix(strings.TrimSpace(*faultsFlag), "{") {
			src, err = os.ReadFile(*faultsFlag)
			if err != nil {
				fatal(err)
			}
		}
		plan, err := faults.Parse(src)
		if err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		cfg.Faults = plan
	}
	// The -prefetcher flag only overrides the config when explicitly set,
	// so a config file's PrefetcherEnabled survives the flag default.
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "prefetcher" {
			cfg.PrefetcherEnabled = *prefetcher
		}
	})

	if *traceDir != "" {
		cfg.Trace = simtrace.New()
		defer func() {
			if err := experiments.WriteTraceFile(*traceDir, "pmembench", cfg.Trace); err != nil {
				fatal(err)
			}
		}()
	}

	if *arrivalsFlag != "" {
		src := []byte(*arrivalsFlag)
		if !strings.HasPrefix(strings.TrimSpace(*arrivalsFlag), "{") {
			src, err = os.ReadFile(*arrivalsFlag)
			if err != nil {
				fatal(err)
			}
		}
		spec, err := queueing.ParseSpec(src)
		if err != nil {
			fatal(fmt.Errorf("-arrivals: %w", err))
		}
		m, err := machine.New(cfg)
		if err != nil {
			fatal(err)
		}
		res, err := queueing.Serve(m, spec)
		if err != nil {
			fatal(err)
		}
		res.Fprint(os.Stdout)
		emitMetrics(m.Metrics(), *showMetrics, *metricsJSON)
		return
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		lines, err := trace.Parse(f)
		if err != nil {
			fatal(err)
		}
		m, err := machine.New(cfg)
		if err != nil {
			fatal(err)
		}
		res, err := trace.Replay(m, lines)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("elapsed: %.3f s  total: %.2f GB/s  read: %.2f GB/s  write: %.2f GB/s\n",
			res.Elapsed, res.Bandwidth/1e9, res.ReadBandwidth/1e9, res.WriteBandwidth/1e9)
		for _, s := range res.Streams {
			fmt.Printf("  %-12s %8.2f GB/s over %6.2f s\n", s.Label, s.Bandwidth/1e9, s.Seconds)
		}
		emitMetrics(m.Metrics(), *showMetrics, *metricsJSON)
		return
	}

	b, err := core.NewBench(cfg)
	if err != nil {
		fatal(err)
	}
	point := core.Point{
		Class: dev, Dir: d, Pattern: p, AccessSize: *size, Threads: *threads,
		Policy: pol, Far: *far, Warm: *warm,
	}

	switch *sweep {
	case "":
		res, err := b.MeasureDetailedContext(ctx, point)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.2f GB/s\n", res.Bandwidth/1e9)
		if *verbose {
			fmt.Println("peak resource utilization:")
			names := make([]string, 0, len(res.PeakUtilization))
			for n := range res.PeakUtilization {
				names = append(names, n)
			}
			sort.Slice(names, func(i, j int) bool {
				return res.PeakUtilization[names[i]] > res.PeakUtilization[names[j]]
			})
			for _, n := range names {
				if u := res.PeakUtilization[n]; u > 0.01 {
					fmt.Printf("  %-24s %5.1f%%\n", n, u*100)
				}
			}
		}
	case "threads":
		axis := []int{1, 2, 4, 6, 8, 12, 16, 18, 24, 32, 36}
		if *sweepJ > 0 {
			requireIsolatedSweep(*showMetrics, *metricsJSON, *traceDir, *faultsFlag)
			points := make([]core.Point, len(axis))
			for i, t := range axis {
				points[i] = point
				points[i].Threads = t
			}
			gbs, err := core.MeasurePoints(ctx, cfg, *sweepJ, points)
			degraded := checkSweepErr(err)
			if !degraded {
				for i, t := range axis {
					fmt.Printf("%3d threads: %6.2f GB/s\n", t, gbs[i])
				}
			}
			markDegraded(degraded)
			return
		}
		res, err := b.SweepThreads(ctx, point, axis)
		degraded := checkSweepErr(err)
		for i, t := range res.Axis {
			fmt.Printf("%3d threads: %6.2f GB/s\n", t, res.GBs[i])
		}
		markDegraded(degraded)
	case "size":
		axis := []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
		if *sweepJ > 0 {
			requireIsolatedSweep(*showMetrics, *metricsJSON, *traceDir, *faultsFlag)
			points := make([]core.Point, len(axis))
			for i, s := range axis {
				points[i] = point
				points[i].AccessSize = s
			}
			gbs, err := core.MeasurePoints(ctx, cfg, *sweepJ, points)
			degraded := checkSweepErr(err)
			if !degraded {
				for i, s := range axis {
					fmt.Printf("%6d B: %6.2f GB/s\n", s, gbs[i])
				}
			}
			markDegraded(degraded)
			return
		}
		res, err := b.SweepAccessSize(ctx, point, axis)
		degraded := checkSweepErr(err)
		for i, s := range res.Axis {
			fmt.Printf("%6d B: %6.2f GB/s\n", s, res.GBs[i])
		}
		markDegraded(degraded)
	default:
		fatal(fmt.Errorf("unknown sweep axis %q (threads or size)", *sweep))
	}
	emitMetrics(b.M.Metrics(), *showMetrics, *metricsJSON)
}

// requireIsolatedSweep rejects flag combinations that need every sweep
// point on one shared machine: -sweep-j gives each point a fresh machine,
// which would silently change what -metrics/-trace-dir record and when a
// -faults plan (scheduled on the machine's lifetime clock) fires.
func requireIsolatedSweep(showMetrics bool, metricsJSON, traceDir, faultsFlag string) {
	if showMetrics || metricsJSON != "" || traceDir != "" || faultsFlag != "" {
		fatal(errors.New("-sweep-j runs points on independent machines; drop it to combine a sweep with -metrics, -metrics-json, -trace-dir, or -faults"))
	}
}

// runBenchMode runs the tier-0 catalogue (quick axes, sf 0.05 — the same
// configuration the committed BENCH_sim.json baseline was recorded with),
// writes the report, and optionally gates against a baseline. With -diagnose
// the doctor triages the comparison — attributing any regression to the
// counter family that shifted — on stderr, whichever way the gate goes.
func runBenchMode(ctx context.Context, outPath, baselinePath string, tolerance float64, diagnose bool) {
	// Read the baseline before writing the report: ratcheting writes the new
	// report over the committed baseline file in place (-bench-json
	// BENCH_sim.json -bench-baseline BENCH_sim.json), so the old bytes must
	// be in hand first. Having the baseline also lets the report record each
	// entry's counter deltas against it.
	var base experiments.BenchReport
	if baselinePath != "" {
		var err error
		base, err = experiments.ReadBenchReport(baselinePath)
		if err != nil {
			fatal(err)
		}
	}
	rep, err := experiments.RunBench(ctx, experiments.Config{SF: 0.05, Quick: true})
	if err != nil {
		fatal(err)
	}
	if baselinePath != "" {
		rep.AnnotateDeltas(base)
	}
	w := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
	if baselinePath == "" {
		return
	}
	if diagnose {
		diagnoseBenchDiff(base, rep, tolerance)
	}
	if findings := experiments.CompareBench(base, rep, tolerance); len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "pmembench: bench regression:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pmembench: bench within tolerance of baseline")
}

// diagnoseBenchDiff runs the doctor's bench-diff triage and prints it to
// stderr. The experiments reports round-trip through JSON into the doctor's
// own report shape (kept separate to avoid an import cycle), so the triage
// sees exactly the bytes a standalone pmemdoctor invocation would.
func diagnoseBenchDiff(base, cur experiments.BenchReport, tolerance float64) {
	conv := func(r experiments.BenchReport) *doctor.BenchReport {
		raw, err := json.Marshal(r)
		if err != nil {
			fatal(err)
		}
		d, err := doctor.ParseBenchReport(raw)
		if err != nil {
			fatal(err)
		}
		return d
	}
	d := doctor.DiagnoseBenchDiff(conv(base), conv(cur), tolerance)
	d.Fprint(os.Stderr)
}

// writeMemProfile dumps the heap profile after a GC, mirroring
// `go test -memprofile`.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

// emitMetrics prints the machine registry's snapshot as text and/or JSON.
func emitMetrics(reg *metrics.Registry, text bool, jsonPath string) {
	if !text && jsonPath == "" {
		return
	}
	snap := reg.Snapshot()
	if text {
		fmt.Println("metrics:")
		snap.Fprint(os.Stdout)
	}
	if jsonPath != "" {
		w := os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := snap.WriteJSON(w); err != nil {
			fatal(err)
		}
	}
}

func parseDir(s string) (access.Direction, error) {
	switch s {
	case "read":
		return access.Read, nil
	case "write":
		return access.Write, nil
	}
	return 0, fmt.Errorf("unknown direction %q", s)
}

func parsePattern(s string) (access.Pattern, error) {
	switch s {
	case "grouped":
		return access.SeqGrouped, nil
	case "individual":
		return access.SeqIndividual, nil
	case "random":
		return access.Random, nil
	}
	return 0, fmt.Errorf("unknown pattern %q", s)
}

func parseDevice(s string) (access.DeviceClass, error) {
	switch s {
	case "pmem":
		return access.PMEM, nil
	case "dram":
		return access.DRAM, nil
	}
	return 0, fmt.Errorf("unknown device %q", s)
}

func parsePin(s string) (cpu.PinPolicy, error) {
	switch s {
	case "cores":
		return cpu.PinCores, nil
	case "numa":
		return cpu.PinNUMA, nil
	case "none":
		return cpu.PinNone, nil
	}
	return 0, fmt.Errorf("unknown pin policy %q", s)
}

// checkSweepErr lets an interrupted sweep fall through with its partial
// results (so a -trace-dir timeline still gets written via the deferred
// writer) and fatals on everything else. It reports whether the sweep was
// cut short, so the output can carry the degraded marker.
func checkSweepErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "pmembench: interrupted, reporting completed points")
		return true
	}
	fatal(err)
	return false
}

// markDegraded stamps partial sweep output so downstream parsers never
// mistake a truncated axis for a completed one.
func markDegraded(degraded bool) {
	if degraded {
		fmt.Println("degraded: true")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmembench:", err)
	os.Exit(1)
}
