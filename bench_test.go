package pmemolap

// One testing.B benchmark per paper table and figure. Each bench regenerates
// its experiment on the simulated machine and reports the experiment's
// headline number as a custom metric, so `go test -bench=.` doubles as a
// compact reproduction report. The SSB benches execute at a small scale
// factor with traffic scaled to the paper's sf 50/100 (see DESIGN.md).

import (
	"testing"

	"repro/internal/experiments"
)

func benchCfg() experiments.Config { return experiments.Config{SF: 0.02, Quick: true} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables, err = e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline metric: the maximum value in the first table (peak GB/s for
	// bandwidth figures, the slowest step for runtime tables).
	if len(tables) > 0 {
		max := 0.0
		for _, s := range tables[0].Series {
			for _, v := range s.Values {
				if v > max {
					max = v
				}
			}
		}
		b.ReportMetric(max, "peak_"+tables[0].Unit)
	}
}

func BenchmarkFig3ReadAccessSizeThreads(b *testing.B)  { runExperiment(b, "fig03") }
func BenchmarkFig4ReadPinning(b *testing.B)            { runExperiment(b, "fig04") }
func BenchmarkFig5ReadNUMAWarmup(b *testing.B)         { runExperiment(b, "fig05") }
func BenchmarkFig6MultiSocketReads(b *testing.B)       { runExperiment(b, "fig06") }
func BenchmarkFig7WriteAccessSizeThreads(b *testing.B) { runExperiment(b, "fig07") }
func BenchmarkFig8WriteHeatmap(b *testing.B)           { runExperiment(b, "fig08") }
func BenchmarkFig9WritePinning(b *testing.B)           { runExperiment(b, "fig09") }
func BenchmarkFig10MultiSocketWrites(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11MixedWorkload(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12RandomReads(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13RandomWrites(b *testing.B)          { runExperiment(b, "fig13") }
func BenchmarkFig14aHyriseSSB(b *testing.B)            { runExperiment(b, "fig14a") }
func BenchmarkFig14bHandcraftedSSB(b *testing.B)       { runExperiment(b, "fig14b") }
func BenchmarkTable1OptimizationLadder(b *testing.B)   { runExperiment(b, "tab01") }
func BenchmarkSSDBaseline(b *testing.B)                { runExperiment(b, "ssd01") }
func BenchmarkDevdaxFsdax(b *testing.B)                { runExperiment(b, "dax01") }

func BenchmarkAblationPrefetcher(b *testing.B)  { runExperiment(b, "abl01") }
func BenchmarkAblationXPBuffer(b *testing.B)    { runExperiment(b, "abl02") }
func BenchmarkAblationInterleave(b *testing.B)  { runExperiment(b, "abl03") }
func BenchmarkAblationUPIMetadata(b *testing.B) { runExperiment(b, "abl04") }
func BenchmarkAblationWarmup(b *testing.B)      { runExperiment(b, "abl05") }
func BenchmarkAdvisorValidation(b *testing.B)   { runExperiment(b, "bp01") }

func BenchmarkExtMemoryMode(b *testing.B)         { runExperiment(b, "ext01") }
func BenchmarkExtHybridPlacement(b *testing.B)    { runExperiment(b, "ext02") }
func BenchmarkExtPricePerformance(b *testing.B)   { runExperiment(b, "ext03") }
func BenchmarkExtWriteAmplification(b *testing.B) { runExperiment(b, "ext04") }
func BenchmarkExtPartitioningSkew(b *testing.B)   { runExperiment(b, "ext05") }
func BenchmarkExtBulkImport(b *testing.B)         { runExperiment(b, "ext06") }

func BenchmarkExtQueryUnderIngest(b *testing.B) { runExperiment(b, "ext07") }

func BenchmarkValidationScorecard(b *testing.B) { runExperiment(b, "val01") }
