// Package pmemolap is the public facade of this repository: a Go
// reproduction of "Maximizing Persistent Memory Bandwidth Utilization for
// OLAP Workloads" (Daase, Bollmeier, Benson, Rabl; SIGMOD 2021).
//
// Because Intel Optane hardware (and Go-level control over non-temporal
// stores, flushes, and the L2 prefetcher) is unavailable, the repository
// substitutes a calibrated performance model of the paper's dual-socket
// evaluation platform, on which all of the paper's experiments — the
// bandwidth characterization of Sections 3-5 and the Star Schema Benchmark
// study of Section 6 — execute in virtual time. See DESIGN.md for the
// substitution argument and EXPERIMENTS.md for paper-vs-measured results.
//
// The facade re-exports the pieces a downstream user needs:
//
//   - NewMachine / DefaultConfig: the simulated server;
//   - NewBench + Point: bandwidth measurement of arbitrary workload points;
//   - Advise / BestPractices: the paper's 7 best practices as code;
//   - GenerateSSB + the two engines (NewAwareEngine, NewNaiveEngine);
//   - Experiments: every table and figure of the paper, regenerable.
package pmemolap

import (
	"context"
	"io"

	"repro/internal/access"
	"repro/internal/aware"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/naive"
	"repro/internal/ssb"
)

// Re-exported machine types.
type (
	// MachineConfig configures the simulated server.
	MachineConfig = machine.Config
	// Machine is the simulated dual-socket PMEM server.
	Machine = machine.Machine
	// Region is an allocation on PMEM, DRAM, or SSD.
	Region = machine.Region
	// Stream is one simulated thread's access pattern.
	Stream = machine.Stream
)

// Re-exported bench and advisor types.
type (
	// Bench measures bandwidth for workload points.
	Bench = core.Bench
	// Point is one benchmark configuration.
	Point = core.Point
	// WorkloadDesc describes a workload for the Advisor.
	WorkloadDesc = core.WorkloadDesc
	// Advice is the Advisor's recommendation.
	Advice = core.Advice
	// Practice is one of the paper's 7 best practices.
	Practice = core.Practice
	// Insight is one of the paper's 12 numbered insights.
	Insight = core.Insight
	// TableDesc describes a data structure for placement planning.
	TableDesc = core.TableDesc
	// PlacementPlan is a hybrid PMEM/DRAM layout decision.
	PlacementPlan = core.PlacementPlan
)

// Re-exported SSB types.
type (
	// SSBData is a generated Star Schema Benchmark database.
	SSBData = ssb.Data
	// SSBQuery is one of the 13 SSB queries.
	SSBQuery = ssb.Query
	// AwareEngine is the handcrafted PMEM-aware engine (Section 6.2).
	AwareEngine = aware.Engine
	// AwareOptions configures the aware engine.
	AwareOptions = aware.Options
	// NaiveEngine is the Hyrise-like PMEM-unaware engine (Section 6.1).
	NaiveEngine = naive.Engine
	// NaiveOptions configures the naive engine.
	NaiveOptions = naive.Options
)

// Device classes, directions, patterns, and pinning policies.
const (
	PMEM = access.PMEM
	DRAM = access.DRAM
	SSD  = access.SSD

	Read  = access.Read
	Write = access.Write

	SeqGrouped    = access.SeqGrouped
	SeqIndividual = access.SeqIndividual
	Random        = access.Random

	PinCores = cpu.PinCores
	PinNUMA  = cpu.PinNUMA
	PinNone  = cpu.PinNone

	DevDax = machine.DevDax
	FsDax  = machine.FsDax
)

// DefaultConfig returns the calibrated model of the paper's platform: a
// dual-socket Xeon Gold 5220S with 12 x 128 GB Optane DIMMs and 186 GB DRAM.
func DefaultConfig() MachineConfig { return machine.DefaultConfig() }

// NewMachine builds a simulated server.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// NewBench builds a bandwidth bench over a fresh machine.
func NewBench(cfg MachineConfig) (*Bench, error) { return core.NewBench(cfg) }

// Advise applies the paper's 7 best practices to a described workload.
func Advise(w WorkloadDesc) Advice { return core.Advise(w) }

// BestPractices returns the paper's Section 7 list.
func BestPractices() []Practice { return core.BestPractices() }

// Insights returns the paper's 12 numbered insights (Sections 3-5).
func Insights() []Insight { return core.Insights() }

// PlanPlacement chooses a hybrid PMEM/DRAM layout for the described data
// structures under a DRAM budget (the paper's future-work direction made
// executable; see internal/core).
func PlanPlacement(tables []TableDesc, dramBudget int64, sockets int) (PlacementPlan, error) {
	return core.PlanPlacement(tables, dramBudget, sockets)
}

// GenerateSSB builds a deterministic SSB database at the scale factor.
func GenerateSSB(sf float64) (*SSBData, error) { return ssb.Generate(sf) }

// SSBQueries returns the 13 queries in flight order.
func SSBQueries() []SSBQuery { return ssb.Queries() }

// NewAwareEngine loads the data into the handcrafted PMEM-aware engine.
func NewAwareEngine(m *Machine, d *SSBData, opt AwareOptions) (*AwareEngine, error) {
	return aware.New(m, d, opt)
}

// NewNaiveEngine loads the data into the Hyrise-like engine.
func NewNaiveEngine(m *Machine, d *SSBData, opt NaiveOptions) (*NaiveEngine, error) {
	return naive.New(m, d, opt)
}

// RunAllExperiments regenerates every table and figure of the paper,
// printing them to w. cfgSF is the scale factor the SSB engines execute at
// (their traffic is scaled to the paper's sf 50/100).
func RunAllExperiments(w io.Writer, cfgSF float64) error {
	cfg := experiments.DefaultConfig()
	if cfgSF > 0 {
		cfg.SF = cfgSF
	}
	return experiments.RunAll(context.Background(), cfg, w)
}
